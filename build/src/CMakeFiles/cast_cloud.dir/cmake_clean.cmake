file(REMOVE_RECURSE
  "CMakeFiles/cast_cloud.dir/cloud/storage.cpp.o"
  "CMakeFiles/cast_cloud.dir/cloud/storage.cpp.o.d"
  "libcast_cloud.a"
  "libcast_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
