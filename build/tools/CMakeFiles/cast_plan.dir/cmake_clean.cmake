file(REMOVE_RECURSE
  "CMakeFiles/cast_plan.dir/cast_plan.cpp.o"
  "CMakeFiles/cast_plan.dir/cast_plan.cpp.o.d"
  "cast_plan"
  "cast_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
