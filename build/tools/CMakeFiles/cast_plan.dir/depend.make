# Empty dependencies file for cast_plan.
# This may be replaced when dependencies are built.
