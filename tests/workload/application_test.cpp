#include "workload/application.hpp"

#include <gtest/gtest.h>

namespace cast::workload {
namespace {

TEST(Application, NamesRoundTrip) {
    for (AppKind a : kAllApps) {
        EXPECT_EQ(app_from_name(app_name(a)), a);
    }
    EXPECT_FALSE(app_from_name("WordCount").has_value());
}

TEST(Application, PhaseNames) {
    EXPECT_EQ(phase_name(Phase::kMap), "map");
    EXPECT_EQ(phase_name(Phase::kShuffle), "shuffle");
    EXPECT_EQ(phase_name(Phase::kReduce), "reduce");
}

TEST(Application, AllProfilesPresentAndConsistent) {
    const auto all = ApplicationProfile::all();
    ASSERT_EQ(all.size(), kAllApps.size());
    for (AppKind a : kAllApps) {
        const auto& p = ApplicationProfile::of(a);
        EXPECT_EQ(p.kind(), a);
        EXPECT_EQ(p.name(), app_name(a));
    }
}

// Table 2 classification.
TEST(Application, Table2SortIsShuffleIntensive) {
    const auto& p = ApplicationProfile::of(AppKind::kSort);
    EXPECT_TRUE(p.intensity().shuffle_io);
    EXPECT_FALSE(p.intensity().map_io);
    EXPECT_FALSE(p.intensity().cpu);
}

TEST(Application, Table2JoinIsShuffleAndReduceIntensive) {
    const auto& p = ApplicationProfile::of(AppKind::kJoin);
    EXPECT_TRUE(p.intensity().shuffle_io);
    EXPECT_TRUE(p.intensity().reduce_io);
    EXPECT_FALSE(p.intensity().cpu);
}

TEST(Application, Table2GrepIsMapIntensive) {
    const auto& p = ApplicationProfile::of(AppKind::kGrep);
    EXPECT_TRUE(p.intensity().map_io);
    EXPECT_FALSE(p.intensity().shuffle_io);
    EXPECT_FALSE(p.intensity().cpu);
}

TEST(Application, Table2KMeansIsCpuIntensive) {
    const auto& p = ApplicationProfile::of(AppKind::kKMeans);
    EXPECT_TRUE(p.intensity().cpu);
    EXPECT_FALSE(p.intensity().map_io);
}

// Calibration invariants the Fig. 1 shapes rest on.
TEST(Application, SortHasNoMapDataReduction) {
    // §3.1.2: "there is no data reduction in the map phase".
    const auto& p = ApplicationProfile::of(AppKind::kSort);
    EXPECT_DOUBLE_EQ(p.map_selectivity(), 1.0);
    EXPECT_DOUBLE_EQ(p.reduce_selectivity(), 1.0);
}

TEST(Application, GrepSelectivityTiny) {
    EXPECT_LE(ApplicationProfile::of(AppKind::kGrep).map_selectivity(), 0.01);
}

TEST(Application, IterativeAppsIterate) {
    EXPECT_GT(ApplicationProfile::of(AppKind::kKMeans).iterations(), 1);
    EXPECT_GT(ApplicationProfile::of(AppKind::kPageRank).iterations(), 1);
    EXPECT_EQ(ApplicationProfile::of(AppKind::kSort).iterations(), 1);
    EXPECT_EQ(ApplicationProfile::of(AppKind::kJoin).iterations(), 1);
    EXPECT_EQ(ApplicationProfile::of(AppKind::kGrep).iterations(), 1);
}

TEST(Application, KMeansComputeRateBelowAnyTierShare) {
    // KMeans must be compute-bound even on persHDD so that persSSD and
    // persHDD perform alike (Fig. 1d): its per-task rate must sit below
    // persHDD's per-slot share at the reference 500 GB capacity
    // (97 MB/s / 8 slots ≈ 12 MB/s).
    EXPECT_LT(ApplicationProfile::of(AppKind::kKMeans).map_compute_rate().value(), 12.0);
}

TEST(Application, GrepScanRateAboveAnyTierShare) {
    // Grep must stay I/O-bound on every tier: its scan rate exceeds even
    // ephSSD's per-slot share (733/8 ≈ 92 MB/s).
    EXPECT_GT(ApplicationProfile::of(AppKind::kGrep).map_compute_rate().value(), 92.0);
}

TEST(Application, JoinEmitsManySmallFiles) {
    // The GCS-connector pathology of Fig. 1b needs Join to write many
    // objects per reduce task; the other apps write one.
    EXPECT_GE(ApplicationProfile::of(AppKind::kJoin).files_per_reduce_task(), 16);
    EXPECT_EQ(ApplicationProfile::of(AppKind::kSort).files_per_reduce_task(), 1);
    EXPECT_EQ(ApplicationProfile::of(AppKind::kGrep).files_per_reduce_task(), 1);
}

TEST(Application, PageRankOutputRatioMatchesPaperExample) {
    // Fig. 4a: PageRank on 20 GB emits 386 MB of page IDs (~1.9%).
    const auto& p = ApplicationProfile::of(AppKind::kPageRank);
    const GigaBytes out = p.output_size(GigaBytes{20.0});
    EXPECT_NEAR(out.value(), 0.386, 0.2);  // same order of magnitude
}

TEST(Application, SizeHelpersComposeSelectivities) {
    const auto& p = ApplicationProfile::of(AppKind::kJoin);
    const GigaBytes input{100.0};
    EXPECT_DOUBLE_EQ(p.intermediate_size(input).value(), 100.0 * p.map_selectivity());
    EXPECT_DOUBLE_EQ(p.output_size(input).value(),
                     100.0 * p.map_selectivity() * p.reduce_selectivity());
}

}  // namespace
}  // namespace cast::workload
