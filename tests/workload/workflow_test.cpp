#include "workload/workflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cast::workload {
namespace {

JobSpec wf_job(int id) {
    return JobSpec{.id = id,
                   .name = "j" + std::to_string(id),
                   .app = AppKind::kSort,
                   .input = GigaBytes{10.0},
                   .map_tasks = 10,
                   .reduce_tasks = 2,
                   .reuse_group = std::nullopt};
}

Workflow diamond() {
    // 1 -> {2, 3} -> 4
    return Workflow("diamond", {wf_job(1), wf_job(2), wf_job(3), wf_job(4)},
                    {{1, 2}, {1, 3}, {2, 4}, {3, 4}}, Seconds{1000.0});
}

TEST(Workflow, IndexOfFindsJobs) {
    const Workflow w = diamond();
    EXPECT_EQ(w.index_of(1), 0u);
    EXPECT_EQ(w.index_of(4), 3u);
    EXPECT_THROW((void)w.index_of(99), ValidationError);
}

TEST(Workflow, PredecessorsAndSuccessors) {
    const Workflow w = diamond();
    EXPECT_TRUE(w.predecessors(0).empty());
    EXPECT_EQ(w.predecessors(3), (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(w.successors(0), (std::vector<std::size_t>{1, 2}));
    EXPECT_TRUE(w.successors(3).empty());
}

TEST(Workflow, RootsAreSourceJobs) {
    const Workflow w = diamond();
    EXPECT_EQ(w.roots(), (std::vector<std::size_t>{0}));
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
    const Workflow w = diamond();
    const auto order = w.topological_order();
    ASSERT_EQ(order.size(), 4u);
    auto pos = [&](std::size_t idx) {
        return std::find(order.begin(), order.end(), idx) - order.begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(0), pos(2));
    EXPECT_LT(pos(1), pos(3));
    EXPECT_LT(pos(2), pos(3));
}

TEST(Workflow, TopologicalOrderDeterministic) {
    const Workflow w = diamond();
    EXPECT_EQ(w.topological_order(), w.topological_order());
}

TEST(Workflow, DfsOrderVisitsAllOnce) {
    const Workflow w = diamond();
    auto order = w.dfs_order();
    ASSERT_EQ(order.size(), 4u);
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Workflow, DfsStartsAtRoot) {
    const Workflow w = diamond();
    EXPECT_EQ(w.dfs_order().front(), 0u);
}

TEST(Workflow, CycleRejected) {
    EXPECT_THROW(Workflow("cyclic", {wf_job(1), wf_job(2)}, {{1, 2}, {2, 1}}, Seconds{100.0}),
                 InvariantError);
}

TEST(Workflow, SelfEdgeRejected) {
    EXPECT_THROW(Workflow("self", {wf_job(1)}, {{1, 1}}, Seconds{100.0}), ValidationError);
}

TEST(Workflow, UnknownEdgeEndpointRejected) {
    EXPECT_THROW(Workflow("bad-edge", {wf_job(1)}, {{1, 7}}, Seconds{100.0}),
                 ValidationError);
}

TEST(Workflow, ZeroDeadlineRejected) {
    EXPECT_THROW(Workflow("no-deadline", {wf_job(1)}, {}, Seconds{0.0}), PreconditionError);
}

TEST(Workflow, EmptyNameRejected) {
    EXPECT_THROW(Workflow("", {wf_job(1)}, {}, Seconds{10.0}), PreconditionError);
}

// The paper's Fig. 4a example.
TEST(SearchLogWorkflow, ShapeMatchesFig4a) {
    const Workflow w = make_search_log_workflow();
    ASSERT_EQ(w.size(), 4u);
    EXPECT_DOUBLE_EQ(w.deadline().value(), 8000.0);

    const std::size_t grep = w.index_of(1);
    const std::size_t pagerank = w.index_of(2);
    const std::size_t sort = w.index_of(3);
    const std::size_t join = w.index_of(4);

    EXPECT_EQ(w.jobs()[grep].app, AppKind::kGrep);
    EXPECT_DOUBLE_EQ(w.jobs()[grep].input.value(), 250.0);
    EXPECT_EQ(w.jobs()[pagerank].app, AppKind::kPageRank);
    EXPECT_DOUBLE_EQ(w.jobs()[pagerank].input.value(), 20.0);
    EXPECT_EQ(w.jobs()[sort].app, AppKind::kSort);
    EXPECT_EQ(w.jobs()[join].app, AppKind::kJoin);

    // Grep -> Sort, Pagerank -> Join, Sort -> Join.
    EXPECT_EQ(w.successors(grep), (std::vector<std::size_t>{sort}));
    EXPECT_EQ(w.successors(pagerank), (std::vector<std::size_t>{join}));
    EXPECT_EQ(w.successors(sort), (std::vector<std::size_t>{join}));
    EXPECT_EQ(w.roots(), (std::vector<std::size_t>{grep, pagerank}));
}

TEST(SearchLogWorkflow, MapTasksTrackChunkCount) {
    const Workflow w = make_search_log_workflow();
    for (const auto& j : w.jobs()) {
        EXPECT_NEAR(j.map_tasks, j.input.value() / 0.128, 1.0) << j.name;
        EXPECT_GE(j.reduce_tasks, 1);
    }
}

}  // namespace
}  // namespace cast::workload
