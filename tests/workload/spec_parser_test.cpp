#include "workload/spec_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/facebook.hpp"

namespace cast::workload {
namespace {

ParsedSpec parse_str(const std::string& text) {
    std::istringstream is(text);
    return parse_spec(is);
}

TEST(SpecParser, MinimalWorkload) {
    const auto spec = parse_str("job 1 Sort 120\n");
    ASSERT_TRUE(spec.workload.has_value());
    EXPECT_FALSE(spec.is_workflow());
    const auto& w = *spec.workload;
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w.job(0).app, AppKind::kSort);
    EXPECT_DOUBLE_EQ(w.job(0).input.value(), 120.0);
    // Paper defaults: 128 MB chunks, reduces = maps/4.
    EXPECT_EQ(w.job(0).map_tasks, 937);
    EXPECT_EQ(w.job(0).reduce_tasks, 234);
}

TEST(SpecParser, CommentsAndBlankLinesIgnored) {
    const auto spec = parse_str(
        "# header comment\n"
        "\n"
        "job 1 Grep 10   # trailing comment\n"
        "   \t  \n"
        "job 2 Join 20\n");
    ASSERT_TRUE(spec.workload.has_value());
    EXPECT_EQ(spec.workload->size(), 2u);
}

TEST(SpecParser, ExplicitOptionsRespected) {
    const auto spec =
        parse_str("job 7 KMeans 64 maps=100 reduces=10 group=3 name=nightly\n");
    const auto& j = spec.workload->job(0);
    EXPECT_EQ(j.id, 7);
    EXPECT_EQ(j.map_tasks, 100);
    EXPECT_EQ(j.reduce_tasks, 10);
    EXPECT_EQ(j.reuse_group, 3);
    EXPECT_EQ(j.name, "nightly");
}

TEST(SpecParser, WorkflowWithEdges) {
    const auto spec = parse_str(
        "workflow etl deadline-min=30\n"
        "job 1 Grep 250\n"
        "job 2 Sort 120\n"
        "job 3 Join 120\n"
        "edge 1 2\n"
        "edge 2 3\n");
    ASSERT_TRUE(spec.is_workflow());
    const auto& wf = *spec.workflow;
    EXPECT_EQ(wf.name(), "etl");
    EXPECT_DOUBLE_EQ(wf.deadline().minutes(), 30.0);
    EXPECT_EQ(wf.size(), 3u);
    EXPECT_EQ(wf.edges().size(), 2u);
    EXPECT_EQ(wf.roots(), (std::vector<std::size_t>{0}));
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
    try {
        (void)parse_str("job 1 Sort 120\njob 2 FooBar 10\n");
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("FooBar"), std::string::npos);
    }
}

TEST(SpecParser, RejectsMalformedInput) {
    EXPECT_THROW((void)parse_str(""), ValidationError);                      // no jobs
    EXPECT_THROW((void)parse_str("job 1 Sort\n"), ValidationError);          // missing size
    EXPECT_THROW((void)parse_str("job 1 Sort -5\n"), ValidationError);       // negative
    EXPECT_THROW((void)parse_str("job x Sort 10\n"), ValidationError);       // bad id
    EXPECT_THROW((void)parse_str("job 1 Sort 10 bogus\n"), ValidationError); // stray token
    EXPECT_THROW((void)parse_str("job 1 Sort 10 foo=1\n"), ValidationError); // bad option
    EXPECT_THROW((void)parse_str("frob 1\n"), ValidationError);              // bad keyword
    EXPECT_THROW((void)parse_str("edge 1 2\n"), ValidationError);  // edge outside workflow
    EXPECT_THROW((void)parse_str("job 1 Sort 10\nworkflow w deadline-min=5\n"),
                 ValidationError);  // workflow not first
    EXPECT_THROW((void)parse_str("workflow w\njob 1 Sort 10\n"),
                 ValidationError);  // missing deadline
    EXPECT_THROW((void)parse_str("workflow w deadline-min=5\njob 1 Sort 10\nedge 1 9\n"),
                 ValidationError);  // unknown edge endpoint
    EXPECT_THROW((void)parse_str("job 1 Sort 10\njob 1 Grep 20\n"),
                 ValidationError);  // duplicate id
}

TEST(SpecParser, RejectsNonFiniteNumbers) {
    // std::stod accepts "nan" and "inf"; the spec format must not.
    EXPECT_THROW((void)parse_str("job 1 Sort nan\n"), ValidationError);
    EXPECT_THROW((void)parse_str("job 1 Sort inf\n"), ValidationError);
    EXPECT_THROW((void)parse_str("job 1 Sort -inf\n"), ValidationError);
    EXPECT_THROW((void)parse_str("workflow w deadline-min=nan\njob 1 Sort 10\n"),
                 ValidationError);
    try {
        (void)parse_str("job 1 Sort nan\n");
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("input size"), std::string::npos);
    }
}

TEST(SpecParser, RejectsNonPositiveSizesAndCounts) {
    EXPECT_THROW((void)parse_str("job 1 Sort 0\n"), ValidationError);
    EXPECT_THROW((void)parse_str("job 1 Sort 10 maps=0\n"), ValidationError);
    EXPECT_THROW((void)parse_str("job 1 Sort 10 reduces=-2\n"), ValidationError);
    EXPECT_THROW((void)parse_str("workflow w deadline-min=0\njob 1 Sort 10\n"),
                 ValidationError);
}

TEST(SpecParser, TierPinParsedAndRoundTripped) {
    const auto spec = parse_str("job 5 Join 80 tier=persSSD\n");
    ASSERT_TRUE(spec.workload.has_value());
    EXPECT_EQ(spec.workload->job(0).pinned_tier, cloud::StorageTier::kPersistentSsd);

    std::ostringstream out;
    write_spec(*spec.workload, out);
    EXPECT_NE(out.str().find("tier=persSSD"), std::string::npos);
    const auto again = parse_str(out.str());
    EXPECT_EQ(again.workload->job(0).pinned_tier, cloud::StorageTier::kPersistentSsd);
}

TEST(SpecParser, RejectsMalformedTierName) {
    try {
        (void)parse_str("job 1 Sort 10 tier=floppy\n");
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("floppy"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("'tier'"), std::string::npos);
    }
}

TEST(SpecParser, WorkloadRoundTrip) {
    const Workload original = synthesize_facebook_workload(42);
    std::ostringstream out;
    write_spec(original, out);
    const auto spec = parse_str(out.str());
    ASSERT_TRUE(spec.workload.has_value());
    const auto& loaded = *spec.workload;
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.job(i).id, original.job(i).id);
        EXPECT_EQ(loaded.job(i).app, original.job(i).app);
        EXPECT_DOUBLE_EQ(loaded.job(i).input.value(), original.job(i).input.value());
        EXPECT_EQ(loaded.job(i).map_tasks, original.job(i).map_tasks);
        EXPECT_EQ(loaded.job(i).reduce_tasks, original.job(i).reduce_tasks);
        EXPECT_EQ(loaded.job(i).reuse_group, original.job(i).reuse_group);
    }
}

TEST(SpecParser, WorkflowRoundTrip) {
    const Workflow original = make_search_log_workflow(Seconds{7200.0});
    std::ostringstream out;
    write_spec(original, out);
    const auto spec = parse_str(out.str());
    ASSERT_TRUE(spec.is_workflow());
    const auto& loaded = *spec.workflow;
    EXPECT_EQ(loaded.name(), original.name());
    EXPECT_DOUBLE_EQ(loaded.deadline().value(), original.deadline().value());
    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.edges().size(), original.edges().size());
    for (std::size_t i = 0; i < original.edges().size(); ++i) {
        EXPECT_EQ(loaded.edges()[i].from_job, original.edges()[i].from_job);
        EXPECT_EQ(loaded.edges()[i].to_job, original.edges()[i].to_job);
    }
    EXPECT_EQ(loaded.topological_order(), original.topological_order());
}

TEST(SpecParser, MissingFileThrows) {
    EXPECT_THROW((void)parse_spec_file("/nonexistent/spec.txt"), ValidationError);
}

TEST(SpecParser, ErrorsCarryColumnOfTheOffendingToken) {
    try {
        (void)parse_str("job 1 Sort 120\njob 2 Grep -30\n");
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos);
        EXPECT_NE(what.find("col 12"), std::string::npos);  // where "-30" starts
    }
}

TEST(SpecParser, ErrorsPointAtTheValuePartOfAnOption) {
    try {
        (void)parse_str("job 1 Sort 10 maps=0\n");
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 1"), std::string::npos);
        EXPECT_NE(what.find("col 20"), std::string::npos);  // where "0" starts
    }
}

TEST(SpecParser, SourceMapRecordsDeclarationLines) {
    const auto spec = parse_str(
        "# header\n"
        "workflow etl deadline-min=30\n"
        "job 1 Grep 250\n"
        "\n"
        "job 2 Sort 120\n"
        "edge 1 2\n");
    EXPECT_EQ(spec.source.workflow_line, 2);
    EXPECT_EQ(spec.source.line_of_job(1), 3);
    EXPECT_EQ(spec.source.line_of_job(2), 5);
    EXPECT_EQ(spec.source.line_of_edge(1, 2), 6);
    EXPECT_EQ(spec.source.line_of_job(9), std::nullopt);
    EXPECT_EQ(spec.source.line_of_edge(2, 1), std::nullopt);
}

TEST(SpecParser, BatchSourceMapHasNoWorkflowLine) {
    const auto spec = parse_str("job 1 Sort 120\n");
    EXPECT_EQ(spec.source.workflow_line, 0);
    EXPECT_EQ(spec.source.line_of_job(1), 1);
}

}  // namespace
}  // namespace cast::workload
