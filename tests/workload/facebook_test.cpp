#include "workload/facebook.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace cast::workload {
namespace {

TEST(FacebookBins, Table4RowsSumTo100Jobs) {
    int total = 0;
    for (const auto& b : facebook_bins()) total += b.workload_jobs;
    EXPECT_EQ(total, 100);
}

TEST(FacebookBins, Table4MapCounts) {
    const auto& bins = facebook_bins();
    const int expected_maps[] = {1, 5, 10, 50, 500, 1500, 3000};
    const int expected_jobs[] = {35, 22, 16, 13, 7, 4, 3};
    for (std::size_t i = 0; i < bins.size(); ++i) {
        EXPECT_EQ(bins[i].workload_maps, expected_maps[i]) << "bin " << i + 1;
        EXPECT_EQ(bins[i].workload_jobs, expected_jobs[i]) << "bin " << i + 1;
    }
}

TEST(FacebookBins, LargeJobsDominateData) {
    // §5.1.1: >99% of data is touched by bins 5-7.
    const auto& bins = facebook_bins();
    double small = 0.0;
    double large = 0.0;
    for (const auto& b : bins) {
        const double data = static_cast<double>(b.workload_maps) * b.workload_jobs;
        (b.bin >= 5 ? large : small) += data;
    }
    EXPECT_GT(large / (small + large), 0.9);
}

class SynthesizedWorkloadTest : public ::testing::Test {
protected:
    Workload w = synthesize_facebook_workload(/*seed=*/42);
};

TEST_F(SynthesizedWorkloadTest, Has100Jobs) { EXPECT_EQ(w.size(), 100u); }

TEST_F(SynthesizedWorkloadTest, BinDistributionMatchesTable4) {
    std::map<int, int> by_maps;
    for (const auto& j : w.jobs()) by_maps[j.map_tasks]++;
    EXPECT_EQ(by_maps[1], 35);
    EXPECT_EQ(by_maps[5], 22);
    EXPECT_EQ(by_maps[10], 16);
    EXPECT_EQ(by_maps[50], 13);
    EXPECT_EQ(by_maps[500], 7);
    EXPECT_EQ(by_maps[1500], 4);
    EXPECT_EQ(by_maps[3000], 3);
}

TEST_F(SynthesizedWorkloadTest, InputSizeIsMapsTimesChunk) {
    for (const auto& j : w.jobs()) {
        EXPECT_NEAR(j.input.value(), j.map_tasks * 0.128, 1e-9) << j.name;
    }
}

TEST_F(SynthesizedWorkloadTest, FifteenPercentShareInput) {
    int sharing = 0;
    for (const auto& j : w.jobs()) sharing += j.reuse_group.has_value() ? 1 : 0;
    EXPECT_EQ(sharing, 15);
}

TEST_F(SynthesizedWorkloadTest, ReuseGroupsAreWellFormed) {
    const auto groups = w.reuse_groups();
    EXPECT_EQ(groups.size(), 5u);  // 15 jobs / groups of 3
    for (const auto& [id, members] : groups) {
        EXPECT_EQ(members.size(), 3u) << "group " << id;
        // All members in the same bin (equal inputs) — Workload::validate
        // enforces equal sizes; also check equal map counts.
        for (std::size_t m : members) {
            EXPECT_EQ(w.job(m).map_tasks, w.job(members[0]).map_tasks);
        }
    }
}

TEST_F(SynthesizedWorkloadTest, AppMixRoughlyBalanced) {
    // Apps are assigned round-robin, then reuse-group members adopt their
    // leader's class (recurring jobs), so counts drift a little from 25.
    std::map<AppKind, int> counts;
    int total = 0;
    for (const auto& j : w.jobs()) {
        counts[j.app]++;
        ++total;
    }
    EXPECT_EQ(total, 100);
    for (AppKind a :
         {AppKind::kSort, AppKind::kJoin, AppKind::kGrep, AppKind::kKMeans}) {
        EXPECT_GE(counts[a], 17) << app_name(a);
        EXPECT_LE(counts[a], 33) << app_name(a);
    }
}

TEST_F(SynthesizedWorkloadTest, ReuseGroupsAreRecurringJobs) {
    for (const auto& [id, members] : w.reuse_groups()) {
        for (std::size_t m : members) {
            EXPECT_EQ(w.job(m).app, w.job(members[0]).app) << "group " << id;
        }
    }
}

TEST_F(SynthesizedWorkloadTest, DeterministicForSeed) {
    const Workload w2 = synthesize_facebook_workload(42);
    ASSERT_EQ(w2.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w.job(i).name, w2.job(i).name);
        EXPECT_EQ(w.job(i).reuse_group, w2.job(i).reuse_group);
    }
}

TEST_F(SynthesizedWorkloadTest, DifferentSeedsChangeGrouping) {
    const Workload w2 = synthesize_facebook_workload(43);
    bool any_diff = false;
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (w.job(i).reuse_group != w2.job(i).reuse_group) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(SynthesisOptions, CustomReuseFraction) {
    SynthesisOptions opts;
    opts.reuse_fraction = 0.0;
    const Workload w = synthesize_facebook_workload(1, opts);
    for (const auto& j : w.jobs()) EXPECT_FALSE(j.reuse_group.has_value());
}

TEST(ModelAccuracyWorkload, SixteenJobsAboutTwoTerabytes) {
    const Workload w = synthesize_model_accuracy_workload(7);
    EXPECT_EQ(w.size(), 16u);
    EXPECT_NEAR(w.total_input().value(), 2000.0, 500.0);  // ~2 TB (§5.1.4)
}

TEST(DeadlineWorkflows, PaperShape) {
    const auto wfs = synthesize_deadline_workflows(11);
    ASSERT_EQ(wfs.size(), 5u);
    std::size_t total_jobs = 0;
    std::size_t longest = 0;
    for (const auto& wf : wfs) {
        total_jobs += wf.size();
        longest = std::max(longest, wf.size());
        // Deadlines in the paper's 15-40 minute band.
        EXPECT_GE(wf.deadline().minutes(), 15.0 - 1e-9) << wf.name();
        EXPECT_LE(wf.deadline().minutes(), 40.0 + 1e-9) << wf.name();
        EXPECT_NO_THROW(wf.validate());
    }
    EXPECT_EQ(total_jobs, 31u);  // §5.2.1
    EXPECT_EQ(longest, 9u);
}

TEST(DeadlineWorkflows, EdgesFormConnectedDags) {
    for (const auto& wf : synthesize_deadline_workflows(11)) {
        EXPECT_EQ(wf.edges().size(), wf.size() - 1);  // built as a tree
        EXPECT_EQ(wf.dfs_order().size(), wf.size());
        EXPECT_EQ(wf.roots().size(), 1u);
    }
}

}  // namespace
}  // namespace cast::workload
