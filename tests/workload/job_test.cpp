#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace cast::workload {
namespace {

using cast::literals::operator""_GB;

JobSpec sample_job(int id = 1, AppKind app = AppKind::kSort, double input_gb = 100.0) {
    return JobSpec{.id = id,
                   .name = "j" + std::to_string(id),
                   .app = app,
                   .input = GigaBytes{input_gb},
                   .map_tasks = 100,
                   .reduce_tasks = 25,
                   .reuse_group = std::nullopt};
}

TEST(JobSpec, DerivedSizesFollowProfile) {
    const JobSpec j = sample_job(1, AppKind::kSort, 100.0);
    EXPECT_DOUBLE_EQ(j.intermediate().value(), 100.0);  // Sort: selectivity 1
    EXPECT_DOUBLE_EQ(j.output().value(), 100.0);
    EXPECT_DOUBLE_EQ(j.capacity_requirement().value(), 300.0);  // Eq. 3
}

TEST(JobSpec, GrepRequirementBarelyAboveInput) {
    const JobSpec j = sample_job(1, AppKind::kGrep, 100.0);
    EXPECT_LT(j.capacity_requirement().value(), 101.0);
    EXPECT_GE(j.capacity_requirement().value(), 100.0);
}

TEST(JobSpec, ValidationCatchesBadSpecs) {
    JobSpec j = sample_job();
    j.input = GigaBytes{0.0};
    EXPECT_THROW(j.validate(), PreconditionError);
    j = sample_job();
    j.map_tasks = 0;
    EXPECT_THROW(j.validate(), PreconditionError);
    j = sample_job();
    j.reduce_tasks = 0;
    EXPECT_THROW(j.validate(), PreconditionError);
}

TEST(Workload, DuplicateIdsRejected) {
    EXPECT_THROW(Workload({sample_job(1), sample_job(1)}), ValidationError);
}

TEST(Workload, ReuseGroupsCollectMembers) {
    JobSpec a = sample_job(1);
    JobSpec b = sample_job(2);
    JobSpec c = sample_job(3);
    a.reuse_group = 5;
    b.reuse_group = 5;
    const Workload w({a, b, c});
    const auto groups = w.reuse_groups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups.at(5), (std::vector<std::size_t>{0, 1}));
}

TEST(Workload, ReuseGroupRequiresEqualInputs) {
    JobSpec a = sample_job(1, AppKind::kSort, 100.0);
    JobSpec b = sample_job(2, AppKind::kSort, 200.0);
    a.reuse_group = 1;
    b.reuse_group = 1;
    EXPECT_THROW(Workload({a, b}), ValidationError);
}

TEST(Workload, TotalInputSums) {
    const Workload w({sample_job(1, AppKind::kSort, 100.0),
                      sample_job(2, AppKind::kGrep, 50.0)});
    EXPECT_DOUBLE_EQ(w.total_input().value(), 150.0);
}

TEST(Workload, TotalRequirementCountsSharedInputOnce) {
    JobSpec a = sample_job(1, AppKind::kGrep, 100.0);
    JobSpec b = sample_job(2, AppKind::kGrep, 100.0);
    a.reuse_group = 1;
    b.reuse_group = 1;
    const Workload w({a, b});
    // Shared input once + both jobs' intermediates/outputs.
    const double expected =
        100.0 + 2 * (a.intermediate().value() + a.output().value());
    EXPECT_NEAR(w.total_capacity_requirement().value(), expected, 1e-9);
}

TEST(Workload, AccessorsAndBounds) {
    const Workload w({sample_job(1)});
    EXPECT_EQ(w.size(), 1u);
    EXPECT_FALSE(w.empty());
    EXPECT_EQ(w.job(0).id, 1);
    EXPECT_THROW((void)w.job(1), PreconditionError);
}

TEST(ReusePattern, PaperPatterns) {
    const ReusePattern hr = ReusePattern::one_hour();
    EXPECT_EQ(hr.accesses, 7);
    EXPECT_DOUBLE_EQ(hr.lifetime.hours(), 1.0);
    const ReusePattern wk = ReusePattern::one_week();
    EXPECT_EQ(wk.accesses, 7);
    EXPECT_DOUBLE_EQ(wk.lifetime.hours(), 168.0);
    EXPECT_EQ(ReusePattern::none().accesses, 1);
}

TEST(ReusePattern, ValidationRejectsZeroAccesses) {
    ReusePattern p{0, Seconds{10.0}};
    EXPECT_THROW(p.validate(), PreconditionError);
}

}  // namespace
}  // namespace cast::workload
