#include "core/eval_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/annealing.hpp"
#include "core/castpp.hpp"
#include "test_support.hpp"
#include "workload/facebook.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload mixed_workload() {
    return workload::Workload(
        {mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
         mk_job(3, AppKind::kGrep, 480.0), mk_job(4, AppKind::kKMeans, 200.0),
         mk_job(5, AppKind::kSort, 160.0), mk_job(6, AppKind::kGrep, 280.0)});
}

// ---------------------------------------------------------------------------
// Memo-table unit behavior.
// ---------------------------------------------------------------------------

TEST(EvalCache, MemoizedLookupReturnsIdenticalBits) {
    const auto& models = testing::small_models();
    const auto job = mk_job(1, AppKind::kSort, 100.0);
    const auto legs = model::StagingLegs::for_tier(StorageTier::kPersistentSsd);
    EvalCache cache;
    const Seconds direct =
        models.job_runtime(job, StorageTier::kPersistentSsd, GigaBytes{120.0}, legs);
    const Seconds a =
        cache.job_runtime(models, job, StorageTier::kPersistentSsd, GigaBytes{120.0}, legs);
    const Seconds b =
        cache.job_runtime(models, job, StorageTier::kPersistentSsd, GigaBytes{120.0}, legs);
    EXPECT_EQ(a.value(), direct.value());
    EXPECT_EQ(b.value(), direct.value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, DistinguishesCapacityTierAndLegs) {
    const auto& models = testing::small_models();
    const auto job = mk_job(1, AppKind::kGrep, 80.0);
    EvalCache cache;
    const model::StagingLegs none{false, false};
    const model::StagingLegs both{true, true};
    (void)cache.job_runtime(models, job, StorageTier::kPersistentSsd, GigaBytes{100.0}, none);
    (void)cache.job_runtime(models, job, StorageTier::kPersistentSsd, GigaBytes{200.0}, none);
    (void)cache.job_runtime(models, job, StorageTier::kPersistentHdd, GigaBytes{100.0}, none);
    (void)cache.job_runtime(models, job, StorageTier::kPersistentSsd, GigaBytes{100.0}, both);
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.size(), 4u);
}

TEST(EvalCache, ObjectStoreCapacityCanonicalized) {
    // The profiled objStore models scale with the conventional intermediate
    // volume, never with provisioned capacity, so every capacity maps to
    // one cache entry.
    const auto& models = testing::small_models();
    ASSERT_TRUE(models.tier_model(AppKind::kSort, StorageTier::kObjectStore)
                    .scales_with_intermediate_volume);
    const auto job = mk_job(1, AppKind::kSort, 60.0);
    const model::StagingLegs legs{false, false};
    EvalCache cache;
    const Seconds a =
        cache.job_runtime(models, job, StorageTier::kObjectStore, GigaBytes{10.0}, legs);
    const Seconds b =
        cache.job_runtime(models, job, StorageTier::kObjectStore, GigaBytes{700.0}, legs);
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, ClearResetsEntriesAndStats) {
    const auto& models = testing::small_models();
    EvalCache cache;
    (void)cache.job_runtime(models, mk_job(1, AppKind::kJoin, 50.0),
                            StorageTier::kPersistentSsd, GigaBytes{64.0},
                            model::StagingLegs{false, false});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().lookups(), 0u);
    EXPECT_EQ(cache.stats().hit_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Golden equivalence: delta + memoized evaluation == full evaluation, bit
// for bit, across a long randomized neighbor walk on the paper workload.
// ---------------------------------------------------------------------------

void expect_bit_identical(const PlanEvaluation& delta, const PlanEvaluation& full,
                          int step) {
    ASSERT_EQ(delta.feasible, full.feasible) << "step " << step;
    ASSERT_EQ(delta.infeasibility, full.infeasibility) << "step " << step;
    if (!full.feasible) return;
    ASSERT_EQ(delta.total_runtime.value(), full.total_runtime.value()) << "step " << step;
    ASSERT_EQ(delta.vm_cost.value(), full.vm_cost.value()) << "step " << step;
    ASSERT_EQ(delta.storage_cost.value(), full.storage_cost.value()) << "step " << step;
    ASSERT_EQ(delta.utility, full.utility) << "step " << step;
    ASSERT_EQ(delta.job_runtimes.size(), full.job_runtimes.size());
    for (std::size_t i = 0; i < full.job_runtimes.size(); ++i) {
        ASSERT_EQ(delta.job_runtimes[i].value(), full.job_runtimes[i].value())
            << "step " << step << " job " << i;
    }
    for (StorageTier t : cloud::kAllTiers) {
        ASSERT_EQ(delta.capacities.aggregate_of(t).value(),
                  full.capacities.aggregate_of(t).value())
            << "step " << step;
        ASSERT_EQ(delta.capacities.per_vm_of(t).value(), full.capacities.per_vm_of(t).value())
            << "step " << step;
    }
}

void golden_walk(bool reuse_aware) {
    const workload::Workload w = workload::synthesize_facebook_workload(7);
    PlanEvaluator eval(testing::small_models(), w, EvalOptions{.reuse_aware = reuse_aware});
    AnnealingOptions opts;
    opts.group_moves = reuse_aware;
    AnnealingSolver solver(eval, opts);
    const auto units = solver.move_units();

    EvalCache cache;
    TieringPlan curr = TieringPlan::uniform(w.size(), StorageTier::kPersistentSsd);
    PlanEvaluation curr_eval = eval.evaluate(curr, &cache);
    ASSERT_TRUE(curr_eval.feasible);

    Rng rng(99);
    std::vector<std::size_t> changed;
    int accepted = 0;
    for (int step = 0; step < 1200; ++step) {
        const TieringPlan next = solver.propose_neighbor(rng, curr, units, changed);
        const PlanEvaluation delta_eval = eval.evaluate_delta(curr_eval, next, changed, &cache);
        const PlanEvaluation full_eval = eval.evaluate(next);  // fresh, uncached
        expect_bit_identical(delta_eval, full_eval, step);
        if (delta_eval.feasible) {
            curr = next;
            curr_eval = delta_eval;
            ++accepted;
        }
    }
    // The walk must actually move, and memoization must actually bite.
    EXPECT_GT(accepted, 100);
    EXPECT_GT(cache.stats().hit_rate(), 0.5);
}

TEST(EvalCacheGolden, DeltaMatchesFullEvaluationReuseOblivious) { golden_walk(false); }

TEST(EvalCacheGolden, DeltaMatchesFullEvaluationReuseAware) { golden_walk(true); }

TEST(EvalCacheGolden, CachedChainBitIdenticalToUncachedChain) {
    // The cache and delta path must not perturb the search trajectory: the
    // same seed must produce the same plan and utility, bit for bit.
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions cached_opts;
    cached_opts.iter_max = 2500;
    AnnealingOptions uncached_opts = cached_opts;
    uncached_opts.use_evaluation_cache = false;
    AnnealingSolver cached(eval, cached_opts);
    AnnealingSolver uncached(eval, uncached_opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    for (std::uint64_t seed : {1ULL, 42ULL, 977ULL}) {
        const auto a = cached.run_chain(init, seed);
        const auto b = uncached.run_chain(init, seed);
        EXPECT_EQ(a.evaluation.utility, b.evaluation.utility) << "seed " << seed;
        EXPECT_EQ(a.accepted_moves, b.accepted_moves) << "seed " << seed;
        EXPECT_EQ(a.infeasible_neighbors, b.infeasible_neighbors) << "seed " << seed;
        ASSERT_EQ(a.plan.size(), b.plan.size());
        for (std::size_t i = 0; i < a.plan.size(); ++i) {
            EXPECT_EQ(a.plan.decision(i).tier, b.plan.decision(i).tier);
            EXPECT_EQ(a.plan.decision(i).overprovision, b.plan.decision(i).overprovision);
        }
    }
}

TEST(EvalCacheGolden, SharedCacheAcrossParallelChainsMatchesSerial) {
    // Eight chains hammering one memo table through the ThreadPool must be
    // both race-free (the TSAN lane runs this test) and bit-identical to
    // the serial solve.
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 800;
    opts.chains = 8;
    opts.seed = 23;
    AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    ThreadPool pool(4);
    EvalCache cache;
    const auto parallel = solver.solve(init, &pool, &cache);
    const auto serial = solver.solve(init, nullptr);
    EXPECT_EQ(parallel.evaluation.utility, serial.evaluation.utility);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.accepted_moves, serial.accepted_moves);
    EXPECT_EQ(parallel.best_chain, serial.best_chain);
    for (std::size_t i = 0; i < parallel.plan.size(); ++i) {
        EXPECT_EQ(parallel.plan.decision(i).tier, serial.plan.decision(i).tier);
        EXPECT_EQ(parallel.plan.decision(i).overprovision,
                  serial.plan.decision(i).overprovision);
    }
    EXPECT_GT(parallel.cache_stats.lookups(), 0u);
    EXPECT_GT(parallel.cache_stats.hit_rate(), 0.5);
}

// ---------------------------------------------------------------------------
// Move-generator regressions (pins + per-unit app membership).
// ---------------------------------------------------------------------------

TEST(AnnealingMoves, AppMoveRelocatesUnitsByMembership) {
    // Reuse group whose FIRST member is Grep but which contains a Sort job:
    // a Sort batch move must relocate the whole group (the old generator
    // classified the unit by its front job and would never move it), while
    // the solo Grep job stays put.
    const workload::Workload w({mk_job(1, AppKind::kGrep, 30.0, 1),
                                mk_job(2, AppKind::kSort, 30.0, 1),
                                mk_job(3, AppKind::kGrep, 20.0)});
    PlanEvaluator eval(testing::small_models(), w, EvalOptions{.reuse_aware = true});
    AnnealingOptions opts;
    opts.group_moves = true;
    opts.app_move_probability = 1.0;
    opts.tier_move_probability = 0.0;
    AnnealingSolver solver(eval, opts);
    const auto units = solver.move_units();

    const TieringPlan curr = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    Rng rng(5);
    std::vector<std::size_t> changed;
    bool group_moved_alone = false;
    for (int i = 0; i < 400; ++i) {
        const TieringPlan next = solver.propose_neighbor(rng, curr, units, changed);
        // Eq. 7 must hold structurally on every proposal.
        EXPECT_EQ(next.decision(0).tier, next.decision(1).tier);
        std::vector<std::size_t> sorted = changed;
        std::sort(sorted.begin(), sorted.end());
        if (sorted == std::vector<std::size_t>{0, 1}) group_moved_alone = true;
    }
    // Only a Sort draw moves the group without the solo Grep job; seeing it
    // proves membership is per-unit, not front-job.
    EXPECT_TRUE(group_moved_alone);
}

TEST(AnnealingMoves, AppMoveRespectsTierPins) {
    workload::JobSpec pinned = mk_job(1, AppKind::kSort, 40.0);
    pinned.pinned_tier = StorageTier::kPersistentSsd;
    const workload::Workload w({pinned, mk_job(2, AppKind::kSort, 50.0),
                                mk_job(3, AppKind::kGrep, 30.0)});
    PlanEvaluator eval(testing::small_models(), w);
    AnnealingOptions opts;
    opts.app_move_probability = 1.0;
    opts.tier_move_probability = 0.0;
    AnnealingSolver solver(eval, opts);
    const auto units = solver.move_units();

    TieringPlan curr = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    Rng rng(11);
    std::vector<std::size_t> changed;
    bool unpinned_sort_moved = false;
    for (int i = 0; i < 400; ++i) {
        const TieringPlan next = solver.propose_neighbor(rng, curr, units, changed);
        EXPECT_EQ(next.decision(0).tier, StorageTier::kPersistentSsd)
            << "pinned job moved on proposal " << i;
        if (next.decision(1).tier != curr.decision(1).tier) unpinned_sort_moved = true;
        if (!changed.empty()) curr = next;  // keep walking
    }
    // The pin must constrain only its own job, not its whole app class.
    EXPECT_TRUE(unpinned_sort_moved);
}

TEST(AnnealingMoves, TierMoveDegradesToFactorMoveWhenFullyPinned) {
    workload::JobSpec pinned = mk_job(1, AppKind::kKMeans, 35.0);
    pinned.pinned_tier = StorageTier::kPersistentHdd;
    const workload::Workload w({pinned});
    PlanEvaluator eval(testing::small_models(), w);
    AnnealingOptions opts;
    opts.app_move_probability = 0.0;
    opts.tier_move_probability = 1.0;
    AnnealingSolver solver(eval, opts);
    const auto units = solver.move_units();

    TieringPlan curr = TieringPlan::uniform(1, StorageTier::kPersistentHdd);
    Rng rng(3);
    std::vector<std::size_t> changed;
    bool factor_changed = false;
    for (int i = 0; i < 100; ++i) {
        const TieringPlan next = solver.propose_neighbor(rng, curr, units, changed);
        EXPECT_EQ(next.decision(0).tier, StorageTier::kPersistentHdd);
        if (next.decision(0).overprovision != curr.decision(0).overprovision) {
            factor_changed = true;
            curr = next;
        }
    }
    EXPECT_TRUE(factor_changed);
}

TEST(AnnealingMoves, FullyPinnedChainProposesNoInfeasibleNeighbors) {
    // With every job pinned, the old generator kept proposing pin-violating
    // tier moves that evaluation then rejected; the fixed generator never
    // wastes an iteration on one.
    std::vector<workload::JobSpec> jobs;
    for (int i = 1; i <= 4; ++i) {
        workload::JobSpec j = mk_job(i, AppKind::kGrep, 20.0 + i);
        j.pinned_tier = StorageTier::kPersistentSsd;
        jobs.push_back(std::move(j));
    }
    PlanEvaluator eval(testing::small_models(), workload::Workload(jobs));
    AnnealingOptions opts;
    opts.iter_max = 2000;
    AnnealingSolver solver(eval, opts);
    const auto result =
        solver.run_chain(TieringPlan::uniform(4, StorageTier::kPersistentSsd), 9);
    EXPECT_EQ(result.infeasible_neighbors, 0);
    EXPECT_EQ(result.iterations, opts.iter_max);
    EXPECT_TRUE(result.evaluation.feasible);
}

TEST(AnnealingMoves, ChangedListMatchesActualPlanDiff) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingSolver solver(eval, AnnealingOptions{});
    const auto units = solver.move_units();
    TieringPlan curr = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    Rng rng(31);
    std::vector<std::size_t> changed;
    for (int i = 0; i < 500; ++i) {
        const TieringPlan next = solver.propose_neighbor(rng, curr, units, changed);
        std::vector<std::size_t> diff;
        for (std::size_t j = 0; j < curr.size(); ++j) {
            if (curr.decision(j).tier != next.decision(j).tier ||
                curr.decision(j).overprovision != next.decision(j).overprovision) {
                diff.push_back(j);
            }
        }
        std::vector<std::size_t> sorted = changed;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, diff) << "proposal " << i;
        curr = next;
    }
}

// ---------------------------------------------------------------------------
// Search-effort counters.
// ---------------------------------------------------------------------------

TEST(AnnealingCounters, SolveAggregatesAcrossChains) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 1000;
    opts.chains = 3;
    opts.seed = 17;
    // This test reconstructs solve()'s counters by re-running the legacy
    // independent chains by hand, so it must pin the legacy path: under
    // replica exchange the per-chain trajectories are intentionally
    // different (tempering determinism is covered by tempering_test.cpp).
    opts.tempering = false;
    AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    const auto result = solver.solve(init);

    // iterations: every chain runs iter_max neighbors.
    EXPECT_EQ(result.iterations, 3 * opts.iter_max);
    EXPECT_GE(result.best_chain, 0);
    EXPECT_LT(result.best_chain, 3);
    EXPECT_GT(result.cache_stats.lookups(), 0u);

    // accepted_moves/infeasible_neighbors: the sum over the same chains run
    // individually (counters are cache-independent — the search trajectory
    // is bit-identical either way).
    const TieringPlan uniform_init = init;  // chains rotate over diverse starts
    std::vector<TieringPlan> starts{uniform_init};
    for (StorageTier t : cloud::kAllTiers) {
        TieringPlan u = TieringPlan::uniform(6, t);
        if (eval.evaluate(u).feasible) starts.push_back(std::move(u));
    }
    int accepted = 0;
    int infeasible = 0;
    double best_utility = -1.0;
    int best_chain = 0;
    for (std::size_t c = 0; c < 3; ++c) {
        const auto r =
            solver.run_chain(starts[c % starts.size()], opts.seed + 7919 * (c + 1));
        accepted += r.accepted_moves;
        infeasible += r.infeasible_neighbors;
        if (r.evaluation.utility > best_utility) {
            best_utility = r.evaluation.utility;
            best_chain = static_cast<int>(c);
        }
    }
    EXPECT_EQ(result.accepted_moves, accepted);
    EXPECT_EQ(result.infeasible_neighbors, infeasible);
    EXPECT_EQ(result.best_chain, best_chain);
    EXPECT_EQ(result.evaluation.utility, best_utility);
}

TEST(WorkflowCounters, SolveAggregatesAcrossChains) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts;
    opts.iter_max = 300;
    opts.chains = 2;
    WorkflowSolver solver(eval, opts);
    const auto result = solver.solve();
    EXPECT_EQ(result.iterations, 2 * opts.iter_max);
    EXPECT_GE(result.best_chain, -1);  // -1 = uniform fallback won
    EXPECT_LT(result.best_chain, 2);
    EXPECT_GT(result.cache_stats.lookups(), 0u);
    EXPECT_GT(result.cache_stats.hit_rate(), 0.0);
}

}  // namespace
}  // namespace cast::core
