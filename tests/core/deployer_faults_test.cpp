// Failure-aware deployment: plan validation, retry/backoff, graceful
// degradation to the backing object store, and fault reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "core/deployer.hpp"
#include "core/report.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<StorageTier> pin = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    workload::JobSpec job{.id = id,
                          .name = "j" + std::to_string(id),
                          .app = app,
                          .input = GigaBytes{gb},
                          .map_tasks = maps,
                          .reduce_tasks = std::max(1, maps / 4),
                          .reuse_group = std::nullopt};
    job.pinned_tier = pin;
    return job;
}

workload::Workload small_workload() {
    return workload::Workload({mk_job(1, AppKind::kSort, 30.0),
                               mk_job(2, AppKind::kGrep, 40.0),
                               mk_job(3, AppKind::kKMeans, 20.0)});
}

sim::SimOptions doomed_options() {
    // Every task attempt is almost surely killed and gets a single attempt:
    // all placements on block tiers fail all executions and must degrade.
    sim::SimOptions o{.seed = 3, .jitter_sigma = 0.06};
    o.faults.seed = 11;
    o.faults.task_kill_prob = 0.9;
    o.faults.task_max_attempts = 1;
    return o;
}

TEST(DeployerValidation, RejectsSizeMismatch) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    EXPECT_THROW(Deployer::validate_plan(
                     eval, TieringPlan::uniform(2, StorageTier::kPersistentSsd)),
                 ValidationError);
}

TEST(DeployerValidation, RejectsViolatedTierPin) {
    const workload::Workload w(
        {mk_job(1, AppKind::kSort, 30.0),
         mk_job(2, AppKind::kGrep, 40.0, StorageTier::kPersistentSsd)});
    PlanEvaluator eval(testing::small_models(), w);
    try {
        Deployer::validate_plan(eval, TieringPlan::uniform(2, StorageTier::kEphemeralSsd));
        FAIL() << "should have thrown";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("j2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("pinned"), std::string::npos);
    }
    // A plan that honours the pin passes the same check.
    EXPECT_NO_THROW(Deployer::validate_plan(
        eval, TieringPlan::uniform(2, StorageTier::kPersistentSsd)));
}

TEST(DeployerValidation, WorkflowRejectsSizeMismatchAndBadFactor) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    EXPECT_THROW(Deployer::validate_workflow_plan(
                     eval, WorkflowPlan::uniform(2, StorageTier::kPersistentSsd)),
                 ValidationError);
    // WorkflowPlan is a plain struct, so a sub-1 factor can reach the
    // deployer; it must be caught before any job runs.
    WorkflowPlan bad = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
    bad.decisions[1].overprovision = 0.5;
    EXPECT_THROW(Deployer::validate_workflow_plan(eval, bad), ValidationError);
}

TEST(DeployerFaults, AggressiveFaultsDegradeGracefully) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const auto dep = Deployer(doomed_options()).deploy(eval, plan);

    // Every job failed its attempt budget, was retried with backoff, and
    // was finally re-homed to the backing object store.
    EXPECT_EQ(dep.degraded_jobs, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_GE(dep.retry_count, 3);
    EXPECT_FALSE(dep.fault_log.empty());
    ASSERT_EQ(dep.job_results.size(), 3u);
    for (const auto& r : dep.job_results) EXPECT_GT(r.makespan.value(), 0.0);
    EXPECT_GT(dep.total_cost().value(), 0.0);
    // Degraded jobs bill on the object store.
    EXPECT_GT(dep.capacities.aggregate_of(StorageTier::kObjectStore).value(), 0.0);
}

TEST(DeployerFaults, RetriesAddBackoffToRuntime) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    DeployPolicy quick;
    quick.retry_backoff_base = Seconds{1000.0};
    const auto slow = Deployer(doomed_options(), quick).deploy(eval, plan);
    DeployPolicy cheap;
    cheap.retry_backoff_base = Seconds{0.0};
    const auto fast = Deployer(doomed_options(), cheap).deploy(eval, plan);
    // Same fault history, different backoff policy: the 1000 s waits are
    // the only difference (3 jobs x 2 retries, geometric growth).
    EXPECT_GT(slow.total_runtime.value(), fast.total_runtime.value() + 5000.0);
}

TEST(DeployerFaults, FailFastPolicyPropagatesSimulationError) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const DeployPolicy fail_fast{.max_job_attempts = 1,
                                 .retry_backoff_base = Seconds{0.0},
                                 .retry_backoff_multiplier = 1.0,
                                 .degrade_to_backing_store = false};
    try {
        (void)Deployer(doomed_options(), fail_fast).deploy(eval, plan);
        FAIL() << "should have thrown";
    } catch (const SimulationError& e) {
        EXPECT_EQ(e.phase(), "deploy");
        EXPECT_FALSE(e.job().empty());
    }
}

TEST(DeployerFaults, MildFaultsSurviveWithoutDegradation) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    sim::SimOptions mild{.seed = 3, .jitter_sigma = 0.06};
    mild.faults = sim::FaultProfile::scaled(0.5, 3);
    const auto dep = Deployer(mild).deploy(eval, plan);
    EXPECT_TRUE(dep.degraded_jobs.empty());
    bool any_faults = false;
    for (const auto& r : dep.job_results) any_faults |= r.faults.any();
    EXPECT_TRUE(any_faults);
    // Degradation is throughput loss, not failure: all jobs completed.
    EXPECT_EQ(dep.job_results.size(), 3u);
}

TEST(DeployerFaults, WorkflowDeploymentDegradesAllDoomedJobs) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    const auto plan = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
    const auto dep = Deployer(doomed_options()).deploy_workflow(eval, plan);
    EXPECT_EQ(dep.degraded_jobs.size(), wf.size());
    EXPECT_EQ(dep.job_results.size(), wf.size());
    for (const auto& r : dep.job_results) EXPECT_GT(r.makespan.value(), 0.0);
    // All endpoints re-homed to objStore: no cross-tier transfer remains.
    for (const auto& t : dep.transfer_times) EXPECT_DOUBLE_EQ(t.value(), 0.0);
    EXPECT_FALSE(dep.fault_log.empty());
}

TEST(DeployerFaults, ReportsIncludeFaultSectionOnlyWhenFaulted) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const auto modeled = eval.evaluate(plan);

    const auto calm = Deployer().deploy(eval, plan);
    std::ostringstream calm_os;
    write_deployment_report(eval, plan, modeled, calm, calm_os);
    EXPECT_EQ(calm_os.str().find("fault handling"), std::string::npos);

    const auto rough = Deployer(doomed_options()).deploy(eval, plan);
    std::ostringstream rough_os;
    write_deployment_report(eval, plan, modeled, rough, rough_os);
    EXPECT_NE(rough_os.str().find("fault handling"), std::string::npos);
    EXPECT_NE(rough_os.str().find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace cast::core
