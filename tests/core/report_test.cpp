#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "rep-" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

class ReportTest : public ::testing::Test {
protected:
    workload::Workload w{{mk_job(1, AppKind::kSort, 30.0), mk_job(2, AppKind::kGrep, 50.0)}};
    PlanEvaluator evaluator{testing::small_models(), w};
    TieringPlan plan = TieringPlan::uniform(2, StorageTier::kPersistentSsd);
};

TEST_F(ReportTest, PlanReportContainsPlacementsAndBill) {
    const auto eval = evaluator.evaluate(plan);
    std::ostringstream os;
    write_plan_report(evaluator, plan, eval, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("rep-1"), std::string::npos);
    EXPECT_NE(out.find("rep-2"), std::string::npos);
    EXPECT_NE(out.find("persSSD"), std::string::npos);
    EXPECT_NE(out.find("tenant utility"), std::string::npos);
    EXPECT_NE(out.find("provisioning bill"), std::string::npos);
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST_F(ReportTest, InfeasiblePlanReportSaysSo) {
    const workload::Workload huge({mk_job(1, AppKind::kSort, 4000.0)});
    PlanEvaluator ev(testing::small_models(), huge);
    const TieringPlan p = TieringPlan::uniform(1, StorageTier::kEphemeralSsd);
    const auto eval = ev.evaluate(p);
    ASSERT_FALSE(eval.feasible);
    std::ostringstream os;
    write_plan_report(ev, p, eval, os);
    EXPECT_NE(os.str().find("INFEASIBLE"), std::string::npos);
}

TEST_F(ReportTest, DeploymentReportShowsDeltas) {
    const auto modeled = evaluator.evaluate(plan);
    const auto measured = Deployer().deploy(evaluator, plan);
    std::ostringstream os;
    write_deployment_report(evaluator, plan, modeled, measured, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("delta"), std::string::npos);
    EXPECT_NE(out.find("measured:"), std::string::npos);
    EXPECT_NE(out.find("modeled:"), std::string::npos);
    EXPECT_NE(out.find("billed on measured runtime"), std::string::npos);
}

TEST_F(ReportTest, CapacityBillSkipsEmptyTiersAndSumsTotal) {
    const auto caps = evaluator.capacities(plan);
    std::ostringstream os;
    write_capacity_bill(caps, Seconds::from_minutes(30.0), testing::small_models().catalog(),
                        os);
    const std::string out = os.str();
    EXPECT_NE(out.find("persSSD"), std::string::npos);
    EXPECT_EQ(out.find("persHDD"), std::string::npos);  // not provisioned
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST_F(ReportTest, WorkflowReportListsTransfersAndVerdict) {
    const auto wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator ev(testing::small_models(), wf);
    WorkflowPlan p = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
    p.decisions[wf.index_of(3)] = {StorageTier::kEphemeralSsd, 1.0};
    const auto dep = Deployer().deploy_workflow(ev, p);
    std::ostringstream os;
    write_workflow_report(ev, p, dep, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("search-log-analysis"), std::string::npos);
    EXPECT_NE(out.find("MET"), std::string::npos);
    EXPECT_NE(out.find("cross-tier transfers"), std::string::npos);
    EXPECT_NE(out.find("->"), std::string::npos);
}

}  // namespace
}  // namespace cast::core
