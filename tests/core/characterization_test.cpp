#include "core/characterization.hpp"

#include <gtest/gtest.h>

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = 1,
                             .name = "char",
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

class CharacterizationTest : public ::testing::Test {
protected:
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cloud::StorageCatalog catalog = cloud::StorageCatalog::google_cloud();
};

TEST_F(CharacterizationTest, BlockTiersGetExperimentVolumes) {
    const auto caps = characterization_capacities(cluster, catalog,
                                                  mk_job(AppKind::kSort, 50.0),
                                                  StorageTier::kPersistentSsd);
    // 500 GB experiment volume even though the job needs only 150.
    EXPECT_DOUBLE_EQ(caps.per_vm_of(StorageTier::kPersistentSsd).value(), 500.0);
    EXPECT_DOUBLE_EQ(caps.per_vm_of(StorageTier::kEphemeralSsd).value(), 0.0);
}

TEST_F(CharacterizationTest, BlockVolumesGrowWhenJobNeedsMore) {
    const auto caps = characterization_capacities(cluster, catalog,
                                                  mk_job(AppKind::kSort, 400.0),
                                                  StorageTier::kPersistentSsd);
    // Sort 400 GB needs 1200 GB on a single VM.
    EXPECT_GE(caps.per_vm_of(StorageTier::kPersistentSsd).value(), 1200.0);
}

TEST_F(CharacterizationTest, EphemeralGetsBackingStore) {
    const auto job = mk_job(AppKind::kSort, 100.0);
    const auto caps = characterization_capacities(cluster, catalog, job,
                                                  StorageTier::kEphemeralSsd);
    EXPECT_GT(caps.per_vm_of(StorageTier::kEphemeralSsd).value(), 0.0);
    EXPECT_NEAR(caps.per_vm_of(StorageTier::kObjectStore).value(),
                (job.input + job.output()).value(), 1e-9);
    // Whole 375 GB volumes.
    EXPECT_NEAR(std::fmod(caps.per_vm_of(StorageTier::kEphemeralSsd).value(), 375.0), 0.0,
                1e-9);
}

TEST_F(CharacterizationTest, ObjectStoreGetsIntermediateVolume) {
    const auto job = mk_job(AppKind::kSort, 100.0);
    const auto caps =
        characterization_capacities(cluster, catalog, job, StorageTier::kObjectStore);
    EXPECT_NEAR(caps.per_vm_of(StorageTier::kPersistentSsd).value(),
                cloud::object_store_intermediate_volume(job.intermediate(), 1).value(),
                1e-9);
}

TEST_F(CharacterizationTest, AggregateIsPerVmTimesWorkers) {
    cloud::ClusterSpec four = cluster;
    four.worker_count = 4;
    const auto caps = characterization_capacities(four, catalog, mk_job(AppKind::kGrep, 80.0),
                                                  StorageTier::kPersistentHdd);
    for (StorageTier t : cloud::kAllTiers) {
        EXPECT_NEAR(caps.aggregate_of(t).value(), 4.0 * caps.per_vm_of(t).value(), 1e-9);
    }
}

TEST_F(CharacterizationTest, RunProducesConsistentCostsAndUtility) {
    const auto r = run_job_on_tier(cluster, catalog, mk_job(AppKind::kGrep, 20.0),
                                   StorageTier::kPersistentSsd);
    EXPECT_GT(r.sim.makespan.value(), 0.0);
    EXPECT_GT(r.vm_cost.value(), 0.0);
    EXPECT_GT(r.storage_cost.value(), 0.0);
    EXPECT_NEAR(r.utility, tenant_utility(r.sim.makespan, r.total_cost()), 1e-12);
    EXPECT_NEAR(r.vm_cost.value(),
                cluster.price_per_minute().value() * r.sim.makespan.minutes(), 1e-9);
}

TEST_F(CharacterizationTest, CustomBlockVolumeOptionRespected) {
    CharacterizationOptions opts;
    opts.block_volume_per_vm = GigaBytes{250.0};
    const auto r = run_job_on_tier(cluster, catalog, mk_job(AppKind::kGrep, 20.0),
                                   StorageTier::kPersistentSsd, opts);
    EXPECT_DOUBLE_EQ(r.capacities.per_vm_of(StorageTier::kPersistentSsd).value(), 250.0);
    // 250 GB persSSD is slower than 500 GB: higher runtime than default.
    const auto def = run_job_on_tier(cluster, catalog, mk_job(AppKind::kGrep, 20.0),
                                     StorageTier::kPersistentSsd);
    EXPECT_GT(r.sim.makespan.value(), def.sim.makespan.value());
}

TEST_F(CharacterizationTest, InputSplitRunsAcrossTiers) {
    auto grep = mk_job(AppKind::kGrep, 6.0);
    grep.map_tasks = 24;
    grep.reduce_tasks = 6;
    const Seconds pure = run_job_with_input_split(
        cluster, catalog, grep, {{StorageTier::kEphemeralSsd, 1.0}});
    const Seconds mixed = run_job_with_input_split(
        cluster, catalog, grep,
        {{StorageTier::kEphemeralSsd, 0.5}, {StorageTier::kPersistentHdd, 0.5}});
    EXPECT_GT(mixed.value(), pure.value());
    EXPECT_THROW(
        (void)run_job_with_input_split(cluster, catalog, grep, {}), PreconditionError);
}

}  // namespace
}  // namespace cast::core
