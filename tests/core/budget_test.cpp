// Wall-budget and cancellation semantics of the solve pipeline: a budget
// bounds the search, never the contract — exhaustion returns the
// best-so-far feasible plan flagged budget_exhausted, and an unbudgeted
// solve is bit-for-bit unaffected by the budget machinery existing.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/cancel.hpp"
#include "core/castpp.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::core {
namespace {

using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

workload::Workload budget_workload() {
    return workload::Workload({mk_job(1, AppKind::kSort, 120.0),
                               mk_job(2, AppKind::kGrep, 200.0),
                               mk_job(3, AppKind::kJoin, 90.0),
                               mk_job(4, AppKind::kKMeans, 150.0)});
}

TEST(SolveBudget, TinyBudgetReturnsFeasiblePlanFlaggedExhausted) {
    CastOptions opts;
    opts.annealing.iter_max = 2'000'000;  // would run for minutes unbudgeted
    opts.annealing.max_wall_ms = 1.0;

    const CastResult result = plan_cast(testing::small_models(), budget_workload(), opts);

    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_TRUE(result.evaluation.feasible);
    EXPECT_GT(result.evaluation.utility, 0.0);
    // The search stopped at a poll boundary long before iter_max.
    EXPECT_LT(result.iterations, opts.annealing.iter_max);
}

TEST(SolveBudget, UnbudgetedSolveIsNeverFlagged) {
    CastOptions opts;
    opts.annealing.iter_max = 400;
    const CastResult result = plan_cast(testing::small_models(), budget_workload(), opts);
    EXPECT_FALSE(result.budget_exhausted);
    EXPECT_EQ(result.iterations, opts.annealing.iter_max * opts.annealing.chains);
}

TEST(SolveBudget, GenerousBudgetDoesNotPerturbTheTrajectory) {
    CastOptions base;
    base.annealing.iter_max = 300;
    CastOptions budgeted = base;
    budgeted.annealing.max_wall_ms = 60'000.0;  // never reached

    const CastResult a = plan_cast(testing::small_models(), budget_workload(), base);
    const CastResult b = plan_cast(testing::small_models(), budget_workload(), budgeted);

    EXPECT_FALSE(b.budget_exhausted);
    EXPECT_EQ(a.evaluation.utility, b.evaluation.utility);
    ASSERT_EQ(a.plan.size(), b.plan.size());
    for (std::size_t i = 0; i < a.plan.size(); ++i) {
        EXPECT_EQ(a.plan.decision(i).tier, b.plan.decision(i).tier);
        EXPECT_EQ(a.plan.decision(i).overprovision, b.plan.decision(i).overprovision);
    }
}

TEST(SolveBudget, PreLatchedCancelTokenStopsImmediatelyButStillPlans) {
    CancelToken cancel;
    cancel.request_stop();

    CastOptions opts;
    opts.annealing.iter_max = 2'000'000;
    opts.annealing.cancel = &cancel;

    const CastResult result = plan_cast(testing::small_models(), budget_workload(), opts);
    EXPECT_TRUE(result.budget_exhausted);  // cancellation reports as exhaustion
    EXPECT_TRUE(result.evaluation.feasible);
    EXPECT_LT(result.iterations, opts.annealing.iter_max);
}

TEST(SolveBudget, WorkflowSolverHonorsTinyBudget) {
    workload::Workflow wf(
        "chain", {mk_job(1, AppKind::kSort, 80.0), mk_job(2, AppKind::kGrep, 80.0),
                  mk_job(3, AppKind::kJoin, 60.0)},
        {{1, 2}, {2, 3}}, Seconds{36000.0});

    AnnealingOptions annealing;
    annealing.iter_max = 2'000'000;
    annealing.max_wall_ms = 1.0;

    const WorkflowEvaluator evaluator(testing::small_models(), wf);
    const WorkflowSolveResult result = WorkflowSolver(evaluator, annealing).solve();

    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_LT(result.iterations, annealing.iter_max);
    EXPECT_EQ(result.plan.decisions.size(), wf.size());
}

}  // namespace
}  // namespace cast::core
