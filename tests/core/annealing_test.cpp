#include "core/annealing.hpp"

#include <gtest/gtest.h>

#include "core/greedy.hpp"
#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload mixed_workload() {
    // Sized so block tiers are genuinely competitive on the 5-VM test
    // cluster (per-VM volumes land in the Table 1 range).
    return workload::Workload(
        {mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
         mk_job(3, AppKind::kGrep, 480.0), mk_job(4, AppKind::kKMeans, 200.0),
         mk_job(5, AppKind::kSort, 160.0), mk_job(6, AppKind::kGrep, 280.0)});
}

AnnealingOptions fast_options() {
    AnnealingOptions o;
    o.iter_max = 3000;
    o.chains = 2;
    o.seed = 17;
    return o;
}

TEST(Annealing, ImprovesOrMatchesInitialUtility) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    const double u_init = eval.evaluate(init).utility;
    AnnealingSolver solver(eval, fast_options());
    const AnnealingResult result = solver.solve(init);
    EXPECT_GE(result.evaluation.utility, u_init);
    EXPECT_TRUE(result.evaluation.feasible);
}

TEST(Annealing, BeatsOrMatchesGreedy) {
    // §4.2.2: annealing exists to fix greedy's myopia; on a mixed workload
    // it must never do worse than the greedy plan it starts from.
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    const TieringPlan greedy_plan = GreedySolver(eval).solve();
    const double u_greedy = eval.evaluate(greedy_plan).utility;
    AnnealingSolver solver(eval, fast_options());
    const AnnealingResult result = solver.solve(greedy_plan);
    EXPECT_GE(result.evaluation.utility, u_greedy - 1e-12);
}

TEST(Annealing, DeterministicChain) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    AnnealingSolver solver(eval, fast_options());
    const auto a = solver.run_chain(init, 123);
    const auto b = solver.run_chain(init, 123);
    EXPECT_DOUBLE_EQ(a.evaluation.utility, b.evaluation.utility);
    for (std::size_t i = 0; i < a.plan.size(); ++i) {
        EXPECT_EQ(a.plan.decision(i).tier, b.plan.decision(i).tier);
        EXPECT_DOUBLE_EQ(a.plan.decision(i).overprovision, b.plan.decision(i).overprovision);
    }
}

TEST(Annealing, MultiChainTakesBest) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentHdd);
    AnnealingOptions opts = fast_options();
    opts.chains = 3;
    AnnealingSolver solver(eval, opts);
    const auto multi = solver.solve(init);
    for (int c = 1; c <= 3; ++c) {
        const auto single = solver.run_chain(init, opts.seed + 7919 * c);
        EXPECT_GE(multi.evaluation.utility, single.evaluation.utility - 1e-12);
    }
}

TEST(Annealing, ParallelSolveMatchesSerialSolve) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    AnnealingSolver solver(eval, fast_options());
    ThreadPool pool(2);
    const auto serial = solver.solve(init, nullptr);
    const auto parallel = solver.solve(init, &pool);
    // Chains are seeded deterministically, so parallel == serial.
    EXPECT_DOUBLE_EQ(serial.evaluation.utility, parallel.evaluation.utility);
}

TEST(Annealing, RejectsInfeasibleInitialPlan) {
    const workload::Workload w({mk_job(1, AppKind::kSort, 4000.0)});
    PlanEvaluator eval(testing::small_models(), w);
    AnnealingSolver solver(eval, fast_options());
    EXPECT_THROW((void)solver.run_chain(TieringPlan::uniform(1, StorageTier::kEphemeralSsd),
                                        1),
                 PreconditionError);
}

TEST(Annealing, GroupMovesPreserveEq7) {
    workload::Workload w({mk_job(1, AppKind::kGrep, 30.0, 1), mk_job(2, AppKind::kGrep, 30.0, 1),
                          mk_job(3, AppKind::kSort, 20.0), mk_job(4, AppKind::kKMeans, 25.0)});
    PlanEvaluator eval(testing::small_models(), w, EvalOptions{.reuse_aware = true});
    AnnealingOptions opts = fast_options();
    opts.group_moves = true;
    AnnealingSolver solver(eval, opts);
    const auto result = solver.solve(TieringPlan::uniform(4, StorageTier::kPersistentSsd));
    EXPECT_TRUE(result.plan.respects_reuse_groups(w));
    EXPECT_TRUE(result.evaluation.feasible);
}

TEST(Annealing, DominatesEveryUniformConfiguration) {
    // Pooling capacity on one block tier boosts everyone's bandwidth
    // (Fig. 2), which can make a single-tier plan genuinely optimal for
    // homogeneous demand — but whatever the landscape, the annealed plan
    // must dominate all four non-tiered baselines (the Fig. 7 comparison
    // set), since each is reachable from any start.
    const workload::Workload w(
        {mk_job(1, AppKind::kSort, 800.0), mk_job(2, AppKind::kGrep, 1500.0),
         mk_job(3, AppKind::kKMeans, 1800.0), mk_job(4, AppKind::kJoin, 400.0)});
    PlanEvaluator eval(testing::small_models(), w);
    AnnealingOptions opts = fast_options();
    opts.iter_max = 8000;
    AnnealingSolver solver(eval, opts);
    const auto result = solver.solve(TieringPlan::uniform(4, StorageTier::kPersistentSsd));
    for (StorageTier t : cloud::kAllTiers) {
        const auto uniform = eval.evaluate(TieringPlan::uniform(4, t));
        if (!uniform.feasible) continue;
        EXPECT_GE(result.evaluation.utility, uniform.utility - 1e-12)
            << "lost to uniform " << cloud::tier_name(t) << "; found "
            << result.plan.summarize();
    }
}

TEST(Annealing, OptionValidation) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions bad = fast_options();
    bad.cooling = 1.5;
    EXPECT_THROW(AnnealingSolver(eval, bad), PreconditionError);
    bad = fast_options();
    bad.iter_max = 0;
    EXPECT_THROW(AnnealingSolver(eval, bad), PreconditionError);
    bad = fast_options();
    bad.overprov_choices.clear();
    EXPECT_THROW(AnnealingSolver(eval, bad), PreconditionError);
}

TEST(Annealing, AcceptedMovesCounted) {
    PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingSolver solver(eval, fast_options());
    const auto result =
        solver.run_chain(TieringPlan::uniform(6, StorageTier::kPersistentSsd), 5);
    EXPECT_GT(result.accepted_moves, 0);
    EXPECT_EQ(result.iterations, fast_options().iter_max);
}

}  // namespace
}  // namespace cast::core
