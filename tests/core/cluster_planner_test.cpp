#include "core/cluster_planner.hpp"

#include <gtest/gtest.h>

namespace cast::core {
namespace {

using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "cp-" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

workload::Workload small_workload() {
    return workload::Workload({mk_job(1, AppKind::kSort, 60.0),
                               mk_job(2, AppKind::kGrep, 90.0),
                               mk_job(3, AppKind::kKMeans, 40.0)});
}

ClusterPlannerOptions cheap_options() {
    ClusterPlannerOptions o;
    o.profiler.runs_per_point = 1;
    o.profiler.block_capacity_points = {30.0, 100.0, 300.0, 500.0, 1000.0};
    o.profiler.eph_volume_points = {1, 2};
    o.cast.annealing.iter_max = 1500;
    o.cast.annealing.chains = 2;
    return o;
}

std::vector<ClusterCandidate> two_sizes() {
    cloud::ClusterSpec small = cloud::ClusterSpec::paper_single_node();
    small.worker_count = 2;
    cloud::ClusterSpec big = cloud::ClusterSpec::paper_single_node();
    big.worker_count = 8;
    return {{"2 workers", small}, {"8 workers", big}};
}

TEST(ClusterPlanner, EvaluatesEveryCandidateAndSortsByUtility) {
    ClusterPlanner planner(cloud::StorageCatalog::google_cloud(), two_sizes(),
                           cheap_options());
    const auto outcomes = planner.evaluate(small_workload());
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto& o : outcomes) {
        EXPECT_TRUE(o.evaluation.feasible) << o.candidate.label;
        EXPECT_EQ(o.plan.size(), 3u);
    }
    EXPECT_GE(outcomes[0].utility(), outcomes[1].utility());
}

TEST(ClusterPlanner, BiggerClusterIsFasterButCostsMore) {
    ClusterPlanner planner(cloud::StorageCatalog::google_cloud(), two_sizes(),
                           cheap_options());
    const auto outcomes = planner.evaluate(small_workload());
    const auto* two = &outcomes[0];
    const auto* eight = &outcomes[1];
    if (two->candidate.label != "2 workers") std::swap(two, eight);
    EXPECT_LT(eight->evaluation.total_runtime.value(),
              two->evaluation.total_runtime.value());
    // Per-minute price is 4x; utility decides whether the speedup pays.
    EXPECT_GT(eight->candidate.cluster.price_per_minute().value(),
              two->candidate.cluster.price_per_minute().value());
}

TEST(ClusterPlanner, DefaultCandidatesAreValid) {
    const auto candidates = ClusterPlanner::default_candidates();
    EXPECT_GE(candidates.size(), 4u);
    for (const auto& c : candidates) {
        EXPECT_FALSE(c.label.empty());
        EXPECT_NO_THROW(c.cluster.validate());
    }
}

TEST(ClusterPlanner, RejectsEmptyCandidateList) {
    EXPECT_THROW(
        ClusterPlanner(cloud::StorageCatalog::google_cloud(), {}, cheap_options()),
        PreconditionError);
}

TEST(ClusterPlanner, ReuseAwareModeRespectsGroups) {
    auto jobs = small_workload().jobs();
    jobs[0].reuse_group = 1;
    workload::JobSpec twin = jobs[0];
    twin.id = 9;
    twin.name = "cp-9";
    jobs.push_back(twin);
    const workload::Workload w(jobs);
    ClusterPlannerOptions opts = cheap_options();
    opts.reuse_aware = true;
    ClusterPlanner planner(cloud::StorageCatalog::google_cloud(), two_sizes(), opts);
    const auto outcomes = planner.evaluate(w);
    for (const auto& o : outcomes) {
        EXPECT_TRUE(o.plan.respects_reuse_groups(w)) << o.candidate.label;
    }
}

}  // namespace
}  // namespace cast::core
