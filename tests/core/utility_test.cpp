#include "core/utility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using cloud::tier_index;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload small_workload() {
    return workload::Workload({mk_job(1, AppKind::kSort, 40.0),
                               mk_job(2, AppKind::kGrep, 60.0),
                               mk_job(3, AppKind::kKMeans, 20.0)});
}

TEST(TenantUtility, MatchesEq2) {
    // U = (1/T_minutes) / dollars.
    EXPECT_NEAR(tenant_utility(Seconds::from_minutes(10.0), Dollars{2.0}), 0.05, 1e-12);
    EXPECT_THROW((void)tenant_utility(Seconds{0.0}, Dollars{1.0}), PreconditionError);
    EXPECT_THROW((void)tenant_utility(Seconds{10.0}, Dollars{0.0}), PreconditionError);
}

TEST(PlanEvaluator, FeasibleUniformPlan) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto e = eval.evaluate(TieringPlan::uniform(3, StorageTier::kPersistentSsd));
    ASSERT_TRUE(e.feasible);
    EXPECT_GT(e.total_runtime.value(), 0.0);
    EXPECT_GT(e.vm_cost.value(), 0.0);
    EXPECT_GT(e.storage_cost.value(), 0.0);
    EXPECT_NEAR(e.utility, tenant_utility(e.total_runtime, e.total_cost()), 1e-12);
    EXPECT_EQ(e.job_runtimes.size(), 3u);
}

TEST(PlanEvaluator, RuntimeIsSumOfJobRuntimes) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto e = eval.evaluate(TieringPlan::uniform(3, StorageTier::kPersistentHdd));
    double sum = 0.0;
    for (const auto& t : e.job_runtimes) sum += t.value();
    EXPECT_NEAR(e.total_runtime.value(), sum, 1e-9);
}

TEST(PlanEvaluator, CapacityMeetsEq3) {
    const auto w = small_workload();
    PlanEvaluator eval(testing::small_models(), w);
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const auto caps = eval.capacities(plan);
    double required = 0.0;
    for (const auto& j : w.jobs()) required += j.capacity_requirement().value();
    EXPECT_GE(caps.aggregate_of(StorageTier::kPersistentSsd).value(), required - 1e-6);
}

TEST(PlanEvaluator, OverprovisionRaisesCapacity) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto c1 = eval.capacities(TieringPlan::uniform(3, StorageTier::kPersistentSsd, 1.0));
    const auto c2 = eval.capacities(TieringPlan::uniform(3, StorageTier::kPersistentSsd, 2.0));
    EXPECT_GT(c2.aggregate_of(StorageTier::kPersistentSsd).value(),
              1.8 * c1.aggregate_of(StorageTier::kPersistentSsd).value());
}

TEST(PlanEvaluator, EphemeralPlanAddsObjectStoreBacking) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto caps = eval.capacities(TieringPlan::uniform(3, StorageTier::kEphemeralSsd));
    EXPECT_GT(caps.aggregate_of(StorageTier::kObjectStore).value(), 0.0);
    EXPECT_GT(caps.aggregate_of(StorageTier::kEphemeralSsd).value(), 0.0);
}

TEST(PlanEvaluator, ObjectStorePlanReservesPersSsdIntermediate) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto caps = eval.capacities(TieringPlan::uniform(3, StorageTier::kObjectStore));
    const int nvm = testing::small_models().cluster().worker_count;
    EXPECT_GE(caps.aggregate_of(StorageTier::kPersistentSsd).value(), 100.0 * nvm - 1e-6);
    EXPECT_NEAR(caps.per_vm_of(StorageTier::kPersistentSsd).value(), 100.0, 1e-6);
}

TEST(PlanEvaluator, EphemeralCapacityRoundsToVolumes) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto caps = eval.capacities(TieringPlan::uniform(3, StorageTier::kEphemeralSsd));
    const double per_vm = caps.per_vm_of(StorageTier::kEphemeralSsd).value();
    EXPECT_NEAR(std::fmod(per_vm, 375.0), 0.0, 1e-9);
}

TEST(PlanEvaluator, InfeasiblePlanReportsNotThrows) {
    // A job far too large for ephSSD on this cluster (4 volumes * 5 VMs =
    // 7500 GB max).
    const workload::Workload w({mk_job(1, AppKind::kSort, 4000.0)});
    PlanEvaluator eval(testing::small_models(), w);
    const auto e = eval.evaluate(TieringPlan::uniform(1, StorageTier::kEphemeralSsd));
    EXPECT_FALSE(e.feasible);
    EXPECT_FALSE(e.infeasibility.empty());
    EXPECT_DOUBLE_EQ(e.utility, 0.0);
}

TEST(PlanEvaluator, PinViolationIsInfeasibleNotThrown) {
    auto job = mk_job(1, AppKind::kSort, 40.0);
    job.pinned_tier = StorageTier::kPersistentSsd;
    const workload::Workload w({job});
    PlanEvaluator eval(testing::small_models(), w);
    const auto bad = eval.evaluate(TieringPlan::uniform(1, StorageTier::kEphemeralSsd));
    EXPECT_FALSE(bad.feasible);
    EXPECT_NE(bad.infeasibility.find("pinned"), std::string::npos);
    const auto good = eval.evaluate(TieringPlan::uniform(1, StorageTier::kPersistentSsd));
    EXPECT_TRUE(good.feasible);
}

TEST(PlanEvaluator, CostsMatchEq5AndEq6) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentHdd);
    const auto e = eval.evaluate(plan);
    ASSERT_TRUE(e.feasible);
    const auto& cluster = testing::small_models().cluster();
    EXPECT_NEAR(e.vm_cost.value(),
                cluster.price_per_minute().value() * e.total_runtime.minutes(), 1e-9);
    // Recompute Eq. 6 by hand.
    const double hours = std::ceil(e.total_runtime.minutes() / 60.0);
    double store = 0.0;
    for (StorageTier t : cloud::kAllTiers) {
        store += e.capacities.aggregate[tier_index(t)].value() *
                 testing::small_models().catalog().service(t).price_per_gb_hour().value() *
                 hours;
    }
    EXPECT_NEAR(e.storage_cost.value(), store, 1e-9);
}

TEST(PlanEvaluator, StorageBilledInWholeHours) {
    // Two plans whose runtimes fall in the same billing hour pay identical
    // storage for identical capacity.
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto caps = eval.capacities(TieringPlan::uniform(3, StorageTier::kPersistentSsd));
    const auto [vm1, st1] = eval.costs_for(Seconds::from_minutes(10.0), caps);
    const auto [vm2, st2] = eval.costs_for(Seconds::from_minutes(50.0), caps);
    EXPECT_DOUBLE_EQ(st1.value(), st2.value());
    const auto [vm3, st3] = eval.costs_for(Seconds::from_minutes(70.0), caps);
    EXPECT_NEAR(st3.value(), 2.0 * st1.value(), 1e-9);
    EXPECT_GT(vm2.value(), vm1.value());
    (void)vm3;
}

// --- Reuse awareness (CAST++ evaluator mode).

workload::Workload reuse_workload() {
    return workload::Workload({mk_job(1, AppKind::kGrep, 50.0, 7),
                               mk_job(2, AppKind::kGrep, 50.0, 7),
                               mk_job(3, AppKind::kGrep, 50.0, 7)});
}

TEST(PlanEvaluator, ReuseAwareCountsSharedInputOnce) {
    PlanEvaluator oblivious(testing::small_models(), reuse_workload(),
                            EvalOptions{.reuse_aware = false});
    PlanEvaluator aware(testing::small_models(), reuse_workload(),
                        EvalOptions{.reuse_aware = true});
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const double c_obl = oblivious.capacities(plan).aggregate_of(StorageTier::kPersistentSsd)
                             .value();
    const double c_aw =
        aware.capacities(plan).aggregate_of(StorageTier::kPersistentSsd).value();
    EXPECT_NEAR(c_obl - c_aw, 100.0, 5.0);  // two extra 50 GB input copies
}

TEST(PlanEvaluator, ReuseAwareRequirementPerJob) {
    PlanEvaluator aware(testing::small_models(), reuse_workload(),
                        EvalOptions{.reuse_aware = true});
    EXPECT_GT(aware.job_requirement(0).value(), 50.0);   // leader holds input
    EXPECT_LT(aware.job_requirement(1).value(), 1.0);    // Grep follower: tiny
    EXPECT_TRUE(aware.pays_input_download(0));
    EXPECT_FALSE(aware.pays_input_download(1));
    EXPECT_FALSE(aware.pays_input_download(2));
}

TEST(PlanEvaluator, ReuseAwareRejectsSplitGroups) {
    PlanEvaluator aware(testing::small_models(), reuse_workload(),
                        EvalOptions{.reuse_aware = true});
    TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    plan.set_decision(1, {StorageTier::kPersistentHdd, 1.0});
    const auto e = aware.evaluate(plan);
    EXPECT_FALSE(e.feasible);
    EXPECT_NE(e.infeasibility.find("Eq. 7"), std::string::npos);
}

TEST(PlanEvaluator, ReuseAwareEphemeralDownloadsOnce) {
    PlanEvaluator oblivious(testing::small_models(), reuse_workload(),
                            EvalOptions{.reuse_aware = false});
    PlanEvaluator aware(testing::small_models(), reuse_workload(),
                        EvalOptions{.reuse_aware = true});
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kEphemeralSsd);
    const auto e_obl = oblivious.evaluate(plan);
    const auto e_aw = aware.evaluate(plan);
    ASSERT_TRUE(e_obl.feasible);
    ASSERT_TRUE(e_aw.feasible);
    // Reuse awareness saves two input downloads -> strictly faster.
    EXPECT_LT(e_aw.total_runtime.value(), e_obl.total_runtime.value());
    EXPECT_GT(e_aw.utility, e_obl.utility);
}

TEST(PlanEvaluator, SizeMismatchRejected) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    EXPECT_THROW((void)eval.evaluate(TieringPlan::uniform(2, StorageTier::kPersistentSsd)),
                 PreconditionError);
}

}  // namespace
}  // namespace cast::core
