// Replica-exchange tempering: schedule arithmetic, SoA-vs-AoS golden
// equality, and the headline determinism claim — a tempered solve is
// bit-identical (exact double equality, not tolerance) at ANY worker
// count, because every (replica, round) segment draws from a seed that is
// a pure function of its coordinates and exchanges happen only at round
// barriers on the calling thread.
#include "core/tempering.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/annealing.hpp"
#include "core/castpp.hpp"
#include "core/eval_cache.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4)};
}

workload::Workload mixed_workload() {
    return workload::Workload(
        {mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
         mk_job(3, AppKind::kGrep, 480.0), mk_job(4, AppKind::kKMeans, 200.0),
         mk_job(5, AppKind::kSort, 160.0), mk_job(6, AppKind::kGrep, 280.0)});
}

void expect_same_plan(const TieringPlan& a, const TieringPlan& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.decisions()[i].tier, b.decisions()[i].tier) << "job " << i;
        EXPECT_EQ(a.decisions()[i].overprovision, b.decisions()[i].overprovision)
            << "job " << i;
    }
}

// ---------------------------------------------------------------------------
// Schedule arithmetic.
// ---------------------------------------------------------------------------

TEST(TemperingSchedule, RoundBoundariesClampToIterMax) {
    const TemperingSchedule sched(1000, 256, 4);
    EXPECT_EQ(sched.rounds(), 4);
    EXPECT_EQ(sched.replicas(), 4);
    EXPECT_EQ(sched.round_begin(0), 0);
    EXPECT_EQ(sched.round_end(0), 256);
    EXPECT_EQ(sched.round_begin(3), 768);
    EXPECT_EQ(sched.round_end(3), 1000);  // short last round

    const TemperingSchedule exact(1024, 256, 2);
    EXPECT_EQ(exact.rounds(), 4);
    EXPECT_EQ(exact.round_end(3), 1024);

    const TemperingSchedule tiny(10, 256, 2);
    EXPECT_EQ(tiny.rounds(), 1);
    EXPECT_EQ(tiny.round_end(0), 10);
}

TEST(TemperingSchedule, PairSweepAlternates) {
    // Even rounds sweep (0,1)(2,3)..., odd rounds (1,2)(3,4)... so a state
    // can traverse the whole ladder over consecutive rounds.
    EXPECT_EQ(TemperingSchedule::first_pair(0), 0);
    EXPECT_EQ(TemperingSchedule::first_pair(1), 1);
    EXPECT_EQ(TemperingSchedule::first_pair(2), 0);
    EXPECT_EQ(TemperingSchedule::first_pair(3), 1);
}

TEST(TemperingSchedule, SegmentSeedsArePureAndDistinct) {
    // Purity: the seed depends on nothing but (solve seed, replica, round).
    EXPECT_EQ(TemperingSchedule::segment_seed(1, 2, 3),
              TemperingSchedule::segment_seed(1, 2, 3));
    // Distinctness across each coordinate and against the exchange stream.
    const std::uint64_t base = TemperingSchedule::segment_seed(1, 2, 3);
    EXPECT_NE(base, TemperingSchedule::segment_seed(2, 2, 3));
    EXPECT_NE(base, TemperingSchedule::segment_seed(1, 3, 3));
    EXPECT_NE(base, TemperingSchedule::segment_seed(1, 2, 4));
    EXPECT_NE(base, TemperingSchedule::exchange_seed(1, 3));
    EXPECT_EQ(TemperingSchedule::exchange_seed(7, 0),
              TemperingSchedule::exchange_seed(7, 0));
    EXPECT_NE(TemperingSchedule::exchange_seed(7, 0),
              TemperingSchedule::exchange_seed(7, 1));
}

TEST(TemperingSchedule, ExchangeAcceptMatchesMetropolisRule) {
    // The hot replica found the lower energy (e_cold > e_hot): log_ratio
    // = Δβ·ΔE > 0, the swap is free whatever the draw.
    EXPECT_TRUE(exchange_accept(2.0, 1.0, 0.5, 0.0, 0.999));
    EXPECT_TRUE(exchange_accept(2.0, 1.0, 0.0, 0.0, 0.999));  // tie: log_ratio == 0
    // Cold is better by 1 energy unit with Δβ = 1 → p = e^-1 ≈ 0.368:
    // the caller's uniform decides.
    EXPECT_TRUE(exchange_accept(2.0, 1.0, -1.0, 0.0, 0.36));
    EXPECT_FALSE(exchange_accept(2.0, 1.0, -1.0, 0.0, 0.38));
    EXPECT_FALSE(exchange_accept(2.0, 1.0, -2.0, 0.0, 0.20));  // p = e^-2
}

// ---------------------------------------------------------------------------
// SoA core vs AoS evaluator: one trajectory, two executions.
// ---------------------------------------------------------------------------

TEST(SoaGolden, ChainTrajectoryBitIdenticalToAos) {
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 1500;
    opts.seed = 11;

    AnnealingOptions aos = opts;
    aos.use_soa_evaluation = false;
    AnnealingOptions soa = opts;
    soa.use_soa_evaluation = true;

    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    for (const std::uint64_t seed : {1ULL, 42ULL, 7919ULL}) {
        EvalCache cache_a;
        EvalCache cache_b;
        const auto ra = AnnealingSolver(eval, aos).run_chain(init, seed, &cache_a);
        const auto rb = AnnealingSolver(eval, soa).run_chain(init, seed, &cache_b);
        EXPECT_EQ(ra.evaluation.utility, rb.evaluation.utility) << "seed " << seed;
        EXPECT_EQ(ra.evaluation.total_runtime.value(), rb.evaluation.total_runtime.value());
        EXPECT_EQ(ra.evaluation.vm_cost.value(), rb.evaluation.vm_cost.value());
        EXPECT_EQ(ra.evaluation.storage_cost.value(), rb.evaluation.storage_cost.value());
        EXPECT_EQ(ra.iterations, rb.iterations);
        EXPECT_EQ(ra.accepted_moves, rb.accepted_moves);
        EXPECT_EQ(ra.infeasible_neighbors, rb.infeasible_neighbors);
        expect_same_plan(ra.plan, rb.plan);
    }
}

TEST(SoaGolden, SolveBitIdenticalToAosUnderTempering) {
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 800;
    opts.chains = 4;
    opts.seed = 23;

    AnnealingOptions aos = opts;
    aos.use_soa_evaluation = false;
    AnnealingOptions soa = opts;
    soa.use_soa_evaluation = true;

    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    const auto ra = AnnealingSolver(eval, aos).solve(init);
    const auto rb = AnnealingSolver(eval, soa).solve(init);
    EXPECT_EQ(ra.evaluation.utility, rb.evaluation.utility);
    EXPECT_EQ(ra.best_chain, rb.best_chain);
    EXPECT_EQ(ra.accepted_moves, rb.accepted_moves);
    EXPECT_EQ(ra.infeasible_neighbors, rb.infeasible_neighbors);
    EXPECT_EQ(ra.tempering.exchange_accepts, rb.tempering.exchange_accepts);
    expect_same_plan(ra.plan, rb.plan);
}

// ---------------------------------------------------------------------------
// Worker-count determinism: the headline claim.
// ---------------------------------------------------------------------------

TEST(TemperingDeterminism, BatchSolveBitIdenticalAcross128Workers) {
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 1200;
    opts.chains = 4;
    opts.seed = 5;
    const AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);

    const auto serial = solver.solve(init);
    ASSERT_TRUE(serial.evaluation.feasible);
    ASSERT_EQ(serial.tempering.replicas, 4);
    EXPECT_GT(serial.tempering.rounds, 0);
    EXPECT_GT(serial.tempering.total_attempts(), 0u);
    EXPECT_EQ(serial.iterations, opts.chains * opts.iter_max);

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(workers);
        const auto pooled = solver.solve(init, &pool);
        EXPECT_EQ(pooled.evaluation.utility, serial.evaluation.utility)
            << workers << " workers";
        EXPECT_EQ(pooled.evaluation.total_runtime.value(),
                  serial.evaluation.total_runtime.value());
        EXPECT_EQ(pooled.evaluation.vm_cost.value(), serial.evaluation.vm_cost.value());
        EXPECT_EQ(pooled.evaluation.storage_cost.value(),
                  serial.evaluation.storage_cost.value());
        EXPECT_EQ(pooled.best_chain, serial.best_chain);
        EXPECT_EQ(pooled.accepted_moves, serial.accepted_moves);
        EXPECT_EQ(pooled.infeasible_neighbors, serial.infeasible_neighbors);
        EXPECT_EQ(pooled.tempering.rounds, serial.tempering.rounds);
        EXPECT_EQ(pooled.tempering.exchange_attempts, serial.tempering.exchange_attempts);
        EXPECT_EQ(pooled.tempering.exchange_accepts, serial.tempering.exchange_accepts);
        EXPECT_EQ(pooled.tempering.replica_iterations, serial.tempering.replica_iterations);
        expect_same_plan(pooled.plan, serial.plan);
    }
}

TEST(TemperingDeterminism, WorkflowSolveBitIdenticalAcrossWorkerCounts) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    const WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts;
    opts.iter_max = 400;
    opts.chains = 3;
    opts.seed = 9;
    const WorkflowSolver solver(eval, opts);

    const auto serial = solver.solve();
    ASSERT_TRUE(serial.evaluation.feasible);
    ASSERT_EQ(serial.tempering.replicas, 3);

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(workers);
        const auto pooled = solver.solve(&pool);
        EXPECT_EQ(pooled.evaluation.total_cost().value(),
                  serial.evaluation.total_cost().value())
            << workers << " workers";
        EXPECT_EQ(pooled.evaluation.total_runtime.value(),
                  serial.evaluation.total_runtime.value());
        EXPECT_EQ(pooled.best_chain, serial.best_chain);
        EXPECT_EQ(pooled.iterations, serial.iterations);
        EXPECT_EQ(pooled.tempering.exchange_attempts, serial.tempering.exchange_attempts);
        EXPECT_EQ(pooled.tempering.exchange_accepts, serial.tempering.exchange_accepts);
        ASSERT_EQ(pooled.plan.decisions.size(), serial.plan.decisions.size());
        for (std::size_t i = 0; i < serial.plan.decisions.size(); ++i) {
            EXPECT_EQ(pooled.plan.decisions[i].tier, serial.plan.decisions[i].tier);
            EXPECT_EQ(pooled.plan.decisions[i].overprovision,
                      serial.plan.decisions[i].overprovision);
        }
    }
}

TEST(TemperingDeterminism, TemperedSolveNeverLosesToItsStart) {
    // The explicit best-start floor in solve_tempering: whatever the
    // exchanges do, the answer can only improve on the best start plan.
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 600;
    opts.chains = 4;
    const AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    const auto base = eval.evaluate(init);
    ASSERT_TRUE(base.feasible);
    const auto result = solver.solve(init);
    EXPECT_GE(result.evaluation.utility, base.utility);
}

TEST(TemperingDeterminism, LegacyPathStillAvailableAndDistinctlyReported) {
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 400;
    opts.chains = 3;
    opts.tempering = false;
    const AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);
    const auto result = solver.solve(init);
    ASSERT_TRUE(result.evaluation.feasible);
    EXPECT_FALSE(result.tempering.enabled());
    EXPECT_EQ(result.tempering.replicas, 0);
}

// ---------------------------------------------------------------------------
// Replica hammer: many replicas racing on ONE shared EvalCache. The cache
// is value-deterministic, so contention may only change hit/miss counts —
// never the answer. Run under the TSan lane this is the data-race probe
// for the tempering hot path.
// ---------------------------------------------------------------------------

TEST(TemperingHammer, SharedCacheRacesNeverChangeTheAnswer) {
    const PlanEvaluator eval(testing::small_models(), mixed_workload());
    AnnealingOptions opts;
    opts.iter_max = 500;
    opts.chains = 8;
    opts.seed = 31;
    const AnnealingSolver solver(eval, opts);
    const TieringPlan init = TieringPlan::uniform(6, StorageTier::kPersistentSsd);

    EvalCache shared;
    ThreadPool pool(8);
    const auto first = solver.solve(init, &pool, &shared);
    ASSERT_TRUE(first.evaluation.feasible);
    for (int repeat = 0; repeat < 3; ++repeat) {
        const auto again = solver.solve(init, &pool, &shared);
        EXPECT_EQ(again.evaluation.utility, first.evaluation.utility) << repeat;
        EXPECT_EQ(again.accepted_moves, first.accepted_moves) << repeat;
        EXPECT_EQ(again.tempering.exchange_accepts, first.tempering.exchange_accepts);
        expect_same_plan(again.plan, first.plan);
    }
}

}  // namespace
}  // namespace cast::core
