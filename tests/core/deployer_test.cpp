#include "core/deployer.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload small_workload() {
    return workload::Workload({mk_job(1, AppKind::kSort, 30.0),
                               mk_job(2, AppKind::kGrep, 40.0),
                               mk_job(3, AppKind::kKMeans, 20.0)});
}

TEST(Deployer, MeasuredRuntimeNearModeledRuntime) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const auto modeled = eval.evaluate(plan);
    ASSERT_TRUE(modeled.feasible);
    const auto measured = Deployer().deploy(eval, plan);
    EXPECT_EQ(measured.job_results.size(), 3u);
    // The Fig. 8 claim: the model tracks the measured deployment within a
    // modest error (the paper reports 7.9% average; allow 25% headroom).
    EXPECT_NEAR(measured.total_runtime.value() / modeled.total_runtime.value(), 1.0, 0.25);
}

TEST(Deployer, CostsUseSameFormulaAsEvaluator) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentHdd);
    const auto dep = Deployer().deploy(eval, plan);
    const auto [vm, store] = eval.costs_for(dep.total_runtime, dep.capacities);
    EXPECT_DOUBLE_EQ(dep.vm_cost.value(), vm.value());
    EXPECT_DOUBLE_EQ(dep.storage_cost.value(), store.value());
    EXPECT_NEAR(dep.utility, tenant_utility(dep.total_runtime, dep.total_cost()), 1e-12);
}

TEST(Deployer, EphemeralJobsStageThroughObjectStore) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const auto dep =
        Deployer().deploy(eval, TieringPlan::uniform(3, StorageTier::kEphemeralSsd));
    for (const auto& r : dep.job_results) {
        EXPECT_GT(r.phases.stage_in.value(), 0.0);
        EXPECT_GT(r.phases.stage_out.value(), 0.0);
    }
}

TEST(Deployer, ReuseAwareDeploymentDownloadsOnce) {
    const workload::Workload w({mk_job(1, AppKind::kGrep, 40.0, 1),
                                mk_job(2, AppKind::kGrep, 40.0, 1),
                                mk_job(3, AppKind::kGrep, 40.0, 1)});
    PlanEvaluator aware(testing::small_models(), w, EvalOptions{.reuse_aware = true});
    const auto dep =
        Deployer().deploy(aware, TieringPlan::uniform(3, StorageTier::kEphemeralSsd));
    EXPECT_GT(dep.job_results[0].phases.stage_in.value(), 0.0);
    EXPECT_DOUBLE_EQ(dep.job_results[1].phases.stage_in.value(), 0.0);
    EXPECT_DOUBLE_EQ(dep.job_results[2].phases.stage_in.value(), 0.0);
}

TEST(Deployer, DeterministicForSeed) {
    PlanEvaluator eval(testing::small_models(), small_workload());
    const TieringPlan plan = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    const auto a = Deployer(sim::SimOptions{.seed = 3, .jitter_sigma = 0.06}).deploy(eval, plan);
    const auto b = Deployer(sim::SimOptions{.seed = 3, .jitter_sigma = 0.06}).deploy(eval, plan);
    EXPECT_DOUBLE_EQ(a.total_runtime.value(), b.total_runtime.value());
}

TEST(Deployer, WorkflowDeploymentRunsAllJobsAndTransfers) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    plan.decisions[wf.index_of(3)] = {StorageTier::kEphemeralSsd, 1.0};
    const auto dep = Deployer().deploy_workflow(eval, plan);
    EXPECT_EQ(dep.job_results.size(), 4u);
    EXPECT_EQ(dep.transfer_times.size(), 3u);
    double transfers = 0.0;
    for (const auto& t : dep.transfer_times) transfers += t.value();
    EXPECT_GT(transfers, 0.0);  // Grep->Sort and Sort->Join cross tiers
    EXPECT_TRUE(dep.met_deadline);
    EXPECT_GT(dep.total_cost().value(), 0.0);
}

TEST(Deployer, WorkflowMidEphemeralJobDoesNotStage) {
    // A mid-workflow ephSSD job receives input via transfer and hands its
    // output to the next transfer; it must not pay objStore staging.
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    const std::size_t sort = wf.index_of(3);  // has pred (Grep) and succ (Join)
    plan.decisions[sort] = {StorageTier::kEphemeralSsd, 1.0};
    const auto dep = Deployer().deploy_workflow(eval, plan);
    EXPECT_DOUBLE_EQ(dep.job_results[sort].phases.stage_in.value(), 0.0);
    EXPECT_DOUBLE_EQ(dep.job_results[sort].phases.stage_out.value(), 0.0);
}

TEST(Deployer, WorkflowModeledRuntimeTracksMeasured) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    const WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    const auto modeled = eval.evaluate(plan);
    const auto measured = Deployer().deploy_workflow(eval, plan);
    EXPECT_NEAR(measured.total_runtime.value() / modeled.total_runtime.value(), 1.0, 0.25);
}

TEST(Deployer, WorkflowCostsUseSameFormulaAsEvaluator) {
    // The deployed workflow and the planner's model must bill through the
    // one shared Eq. 5-6 implementation: for the same makespan and
    // capacities the costs are equal to the last bit, so modeled-vs-
    // deployed comparisons can never show phantom cost drift.
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    plan.decisions[wf.index_of(3)] = {StorageTier::kEphemeralSsd, 1.0};
    const auto dep = Deployer().deploy_workflow(eval, plan);
    const auto [vm, store] = eq5_eq6_costs(eval.models(), dep.total_runtime, dep.capacities);
    EXPECT_EQ(dep.vm_cost.value(), vm.value());
    EXPECT_EQ(dep.storage_cost.value(), store.value());

    // And the evaluator's own modeled costs come from the same formula.
    const auto modeled = eval.evaluate(plan);
    const auto [mvm, mstore] =
        eq5_eq6_costs(eval.models(), modeled.total_runtime, modeled.capacities);
    EXPECT_EQ(modeled.vm_cost.value(), mvm.value());
    EXPECT_EQ(modeled.storage_cost.value(), mstore.value());
}

TEST(Deployer, WorkflowDeadlineMissDetected) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{1.0});
    WorkflowEvaluator eval(testing::small_models(), wf);
    const auto dep =
        Deployer().deploy_workflow(eval, WorkflowPlan::uniform(4, StorageTier::kPersistentSsd));
    EXPECT_FALSE(dep.met_deadline);
}

}  // namespace
}  // namespace cast::core
