#include "core/plan.hpp"

#include <gtest/gtest.h>

namespace cast::core {
namespace {

using cloud::StorageTier;

workload::JobSpec job(int id, std::optional<int> group = std::nullopt) {
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = workload::AppKind::kSort,
                             .input = GigaBytes{10.0},
                             .map_tasks = 80,
                             .reduce_tasks = 20,
                             .reuse_group = group};
}

TEST(TieringPlan, UniformAssignsEveryJob) {
    const TieringPlan p = TieringPlan::uniform(4, StorageTier::kPersistentHdd, 2.0);
    EXPECT_EQ(p.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p.decision(i).tier, StorageTier::kPersistentHdd);
        EXPECT_DOUBLE_EQ(p.decision(i).overprovision, 2.0);
    }
}

TEST(TieringPlan, SetDecisionBoundsChecked) {
    TieringPlan p = TieringPlan::uniform(2, StorageTier::kPersistentSsd);
    p.set_decision(1, {StorageTier::kObjectStore, 1.5});
    EXPECT_EQ(p.decision(1).tier, StorageTier::kObjectStore);
    EXPECT_THROW(p.set_decision(2, {StorageTier::kObjectStore, 1.0}), PreconditionError);
    EXPECT_THROW((void)p.decision(5), PreconditionError);
}

TEST(TieringPlan, OverprovisionBelowOneRejected) {
    EXPECT_THROW(TieringPlan::uniform(1, StorageTier::kPersistentSsd, 0.5),
                 PreconditionError);
    TieringPlan p = TieringPlan::uniform(1, StorageTier::kPersistentSsd);
    EXPECT_THROW(p.set_decision(0, {StorageTier::kPersistentSsd, 0.99}), PreconditionError);
}

TEST(TieringPlan, RespectsReuseGroupsDetectsSplit) {
    const workload::Workload w({job(1, 1), job(2, 1), job(3)});
    TieringPlan p = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    EXPECT_TRUE(p.respects_reuse_groups(w));
    p.set_decision(1, {StorageTier::kPersistentHdd, 1.0});
    EXPECT_FALSE(p.respects_reuse_groups(w));
    p.set_decision(0, {StorageTier::kPersistentHdd, 1.0});
    EXPECT_TRUE(p.respects_reuse_groups(w));  // group reunited on HDD
}

TEST(TieringPlan, SummarizeCountsTiers) {
    TieringPlan p = TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    p.set_decision(2, {StorageTier::kObjectStore, 1.0});
    const std::string s = p.summarize();
    EXPECT_NE(s.find("2 jobs on persSSD"), std::string::npos);
    EXPECT_NE(s.find("1 jobs on objStore"), std::string::npos);
}

TEST(TieringPlan, EmptyPlanSummary) {
    EXPECT_EQ(TieringPlan().summarize(), "(empty plan)");
}

}  // namespace
}  // namespace cast::core
