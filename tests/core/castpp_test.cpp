#include "core/castpp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"
#include "workload/facebook.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

CastOptions fast_cast_options() {
    CastOptions o;
    o.annealing.iter_max = 2500;
    o.annealing.chains = 2;
    o.annealing.seed = 23;
    return o;
}

TEST(CastFacade, PlanIsFeasibleAndBeatsUniform) {
    const workload::Workload w(
        {mk_job(1, AppKind::kSort, 40.0), mk_job(2, AppKind::kJoin, 30.0),
         mk_job(3, AppKind::kGrep, 60.0), mk_job(4, AppKind::kKMeans, 25.0)});
    const auto result = plan_cast(testing::small_models(), w, fast_cast_options());
    ASSERT_TRUE(result.evaluation.feasible);
    PlanEvaluator eval(testing::small_models(), w);
    for (StorageTier t : cloud::kAllTiers) {
        const auto uniform = eval.evaluate(TieringPlan::uniform(w.size(), t));
        if (!uniform.feasible) continue;
        EXPECT_GE(result.evaluation.utility, uniform.utility - 1e-12)
            << "CAST lost to uniform " << cloud::tier_name(t);
    }
}

TEST(CastFacade, PlusPlusRespectsReuseGroups) {
    const workload::Workload w(
        {mk_job(1, AppKind::kGrep, 40.0, 1), mk_job(2, AppKind::kGrep, 40.0, 1),
         mk_job(3, AppKind::kGrep, 40.0, 1), mk_job(4, AppKind::kSort, 30.0),
         mk_job(5, AppKind::kKMeans, 25.0)});
    const auto result = plan_cast_plus_plus(testing::small_models(), w, fast_cast_options());
    ASSERT_TRUE(result.evaluation.feasible);
    EXPECT_TRUE(result.plan.respects_reuse_groups(w));
}

TEST(CastFacade, SolverHonorsTierPin) {
    // Unpinned, this 1800 GB KMeans lands on persHDD (see greedy tests);
    // the pin must override the utility-optimal choice.
    auto pinned = mk_job(1, AppKind::kKMeans, 1800.0);
    pinned.pinned_tier = StorageTier::kPersistentSsd;
    const workload::Workload w({pinned, mk_job(2, AppKind::kSort, 40.0)});
    const auto result = plan_cast(testing::small_models(), w, fast_cast_options());
    ASSERT_TRUE(result.evaluation.feasible);
    EXPECT_EQ(result.plan.decision(0).tier, StorageTier::kPersistentSsd);
    EXPECT_EQ(result.greedy_initial.decision(0).tier, StorageTier::kPersistentSsd);
}

TEST(CastFacade, PinnedMemberAnchorsWholeReuseGroup) {
    auto a = mk_job(1, AppKind::kGrep, 40.0, 1);
    auto b = mk_job(2, AppKind::kGrep, 40.0, 1);
    b.pinned_tier = StorageTier::kObjectStore;
    const workload::Workload w({a, b, mk_job(3, AppKind::kSort, 30.0)});
    const auto result = plan_cast_plus_plus(testing::small_models(), w, fast_cast_options());
    ASSERT_TRUE(result.evaluation.feasible);
    EXPECT_EQ(result.plan.decision(0).tier, StorageTier::kObjectStore);
    EXPECT_EQ(result.plan.decision(1).tier, StorageTier::kObjectStore);
}

TEST(CastFacade, ConflictingGroupPinsRejectedWithClearError) {
    auto a = mk_job(1, AppKind::kGrep, 40.0, 1);
    auto b = mk_job(2, AppKind::kGrep, 40.0, 1);
    a.pinned_tier = StorageTier::kPersistentSsd;
    b.pinned_tier = StorageTier::kObjectStore;
    const workload::Workload w({a, b});
    try {
        plan_cast_plus_plus(testing::small_models(), w, fast_cast_options());
        FAIL() << "expected ValidationError";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("reuse group"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("j1"), std::string::npos);
    }
}

TEST(CastFacade, PlusPlusBeatsCastOnReuseHeavyWorkload) {
    // With substantial sharing, reuse awareness must not lose (§5.1.3).
    std::vector<workload::JobSpec> jobs;
    int id = 1;
    for (int g = 1; g <= 3; ++g) {
        for (int k = 0; k < 3; ++k) {
            jobs.push_back(mk_job(id, AppKind::kGrep, 50.0, g));
            ++id;
        }
    }
    jobs.push_back(mk_job(id++, AppKind::kKMeans, 30.0));
    const workload::Workload w(jobs);
    const auto base = plan_cast(testing::small_models(), w, fast_cast_options());
    const auto pp = plan_cast_plus_plus(testing::small_models(), w, fast_cast_options());
    // Evaluate both with the reuse-aware evaluator (what the deployment
    // actually pays) — CAST++ must win or tie.
    PlanEvaluator aware(testing::small_models(), w, EvalOptions{.reuse_aware = true});
    TieringPlan base_projected = base.plan;
    for (const auto& [group, members] : w.reuse_groups()) {
        const auto lead = base_projected.decision(members.front());
        for (std::size_t m : members) base_projected.set_decision(m, lead);
    }
    const double u_base = aware.evaluate(base_projected).utility;
    EXPECT_GE(pp.evaluation.utility, u_base - 1e-9);
}

// --- Workflow evaluation.

class WorkflowEvalTest : public ::testing::Test {
protected:
    workload::Workflow wf = workload::make_search_log_workflow(Seconds{8000.0});
    WorkflowEvaluator eval{testing::small_models(), wf};
};

TEST_F(WorkflowEvalTest, UniformPlanEvaluates) {
    const auto e = eval.evaluate(WorkflowPlan::uniform(4, StorageTier::kPersistentSsd));
    ASSERT_TRUE(e.feasible);
    EXPECT_GT(e.total_runtime.value(), 0.0);
    EXPECT_EQ(e.job_runtimes.size(), 4u);
    EXPECT_EQ(e.transfer_times.size(), 3u);
    // Same tier everywhere: no cross-tier transfers.
    for (const auto& t : e.transfer_times) EXPECT_DOUBLE_EQ(t.value(), 0.0);
}

TEST_F(WorkflowEvalTest, PinViolationIsInfeasible) {
    std::vector<workload::JobSpec> jobs = wf.jobs();
    jobs[0].pinned_tier = StorageTier::kPersistentSsd;
    workload::Workflow pinned("pinned", std::move(jobs),
                              {wf.edges().begin(), wf.edges().end()}, wf.deadline());
    WorkflowEvaluator pinned_eval{testing::small_models(), pinned};
    const auto e = pinned_eval.evaluate(WorkflowPlan::uniform(4, StorageTier::kEphemeralSsd));
    EXPECT_FALSE(e.feasible);
    EXPECT_NE(e.infeasibility.find("pinned"), std::string::npos);
}

TEST_F(WorkflowEvalTest, CrossTierEdgesPayTransfers) {
    WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    plan.decisions[wf.index_of(3)] = {StorageTier::kEphemeralSsd, 1.0};  // Sort moves
    const auto e = eval.evaluate(plan);
    ASSERT_TRUE(e.feasible);
    double transfers = 0.0;
    for (const auto& t : e.transfer_times) transfers += t.value();
    EXPECT_GT(transfers, 0.0);
}

TEST_F(WorkflowEvalTest, Eq10InputCountedOnlyWhenNotResident) {
    WorkflowPlan same = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    // Join (job 4) has predecessors Sort and Pagerank on the same tier:
    // its input is resident.
    const GigaBytes with_resident = eval.job_requirement(same, wf.index_of(4));
    WorkflowPlan split = same;
    split.decisions[wf.index_of(3)] = {StorageTier::kPersistentHdd, 1.0};
    const GigaBytes without = eval.job_requirement(split, wf.index_of(4));
    EXPECT_NEAR(without.value() - with_resident.value(),
                wf.jobs()[wf.index_of(4)].input.value(), 1e-9);
}

TEST_F(WorkflowEvalTest, RootJobsAlwaysProvisionInput) {
    const WorkflowPlan plan = WorkflowPlan::uniform(4, StorageTier::kPersistentSsd);
    const std::size_t grep = wf.index_of(1);
    EXPECT_GE(eval.job_requirement(plan, grep).value(), wf.jobs()[grep].input.value());
}

TEST_F(WorkflowEvalTest, DeadlineFlagTracksDeadline) {
    const workload::Workflow tight = workload::make_search_log_workflow(Seconds{1.0});
    WorkflowEvaluator tight_eval(testing::small_models(), tight);
    const auto e = tight_eval.evaluate(WorkflowPlan::uniform(4, StorageTier::kPersistentSsd));
    ASSERT_TRUE(e.feasible);
    EXPECT_FALSE(e.meets_deadline);
    const workload::Workflow loose = workload::make_search_log_workflow(Seconds{1e7});
    WorkflowEvaluator loose_eval(testing::small_models(), loose);
    EXPECT_TRUE(loose_eval.evaluate(WorkflowPlan::uniform(4, StorageTier::kPersistentSsd))
                    .meets_deadline);
}

TEST_F(WorkflowEvalTest, TransferTimeSymmetricInVolumeAndBandwidth) {
    const Seconds t1 = eval.transfer_time(GigaBytes{10.0}, StorageTier::kPersistentSsd,
                                          GigaBytes{500.0}, StorageTier::kPersistentHdd,
                                          GigaBytes{500.0});
    const Seconds t2 = eval.transfer_time(GigaBytes{20.0}, StorageTier::kPersistentSsd,
                                          GigaBytes{500.0}, StorageTier::kPersistentHdd,
                                          GigaBytes{500.0});
    EXPECT_NEAR(t2.value(), 2.0 * t1.value(), 1e-9);
    EXPECT_DOUBLE_EQ(eval.transfer_time(GigaBytes{10.0}, StorageTier::kPersistentSsd,
                                        GigaBytes{500.0}, StorageTier::kPersistentSsd,
                                        GigaBytes{500.0})
                         .value(),
                     0.0);
}

// --- Workflow solver.

TEST(WorkflowSolver, MeetsGenerousDeadlineAtLowCost) {
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{50000.0});
    WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts;
    opts.iter_max = 2000;
    opts.chains = 2;
    WorkflowSolver solver(eval, opts);
    const auto result = solver.solve();
    ASSERT_TRUE(result.evaluation.feasible);
    EXPECT_TRUE(result.evaluation.meets_deadline);
    // With a generous deadline the solver should find something at most as
    // expensive as all-persSSD.
    const auto ssd = eval.evaluate(WorkflowPlan::uniform(4, StorageTier::kPersistentSsd));
    EXPECT_LE(result.evaluation.total_cost().value(), ssd.total_cost().value() + 1e-9);
}

TEST(WorkflowSolver, PrefersDeadlineOverCost) {
    // With a deadline only fast tiers can meet, the solver must not pick
    // the cheapest (slow) configuration.
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{50000.0});
    WorkflowEvaluator loose(testing::small_models(), wf);
    AnnealingOptions opts;
    opts.iter_max = 2000;
    opts.chains = 2;
    const auto relaxed = WorkflowSolver(loose, opts).solve();
    ASSERT_TRUE(relaxed.evaluation.meets_deadline);

    // Tighten the deadline to just above the best runtime the relaxed
    // solver found; re-solve and require the deadline still holds.
    const double tight_deadline = relaxed.evaluation.total_runtime.value() * 1.5;
    const workload::Workflow wf_tight =
        workload::make_search_log_workflow(Seconds{tight_deadline});
    WorkflowEvaluator tight(testing::small_models(), wf_tight);
    const auto strict = WorkflowSolver(tight, opts).solve();
    EXPECT_TRUE(strict.evaluation.meets_deadline);
    EXPECT_GE(strict.evaluation.total_cost().value(),
              relaxed.evaluation.total_cost().value() - 1e-6);
}

TEST(WorkflowSolver, DeterministicChain) {
    const workload::Workflow wf = workload::make_search_log_workflow();
    WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts;
    opts.iter_max = 800;
    WorkflowSolver solver(eval, opts);
    const auto a = solver.run_chain(42);
    const auto b = solver.run_chain(42);
    EXPECT_DOUBLE_EQ(a.evaluation.total_cost().value(), b.evaluation.total_cost().value());
}

// --- Reuse scenarios (Fig. 3 economics).

TEST(ReuseScenario, RepeatRunsSkipDownloadOnEphemeral) {
    const auto job = mk_job(1, AppKind::kGrep, 40.0);
    const auto r = evaluate_reuse_scenario(testing::small_models(), job,
                                           StorageTier::kEphemeralSsd,
                                           workload::ReusePattern::one_hour());
    EXPECT_GT(r.first_run.value(), r.repeat_run.value());
}

TEST(ReuseScenario, PersistentTiersRunsIdentical) {
    const auto job = mk_job(1, AppKind::kGrep, 40.0);
    const auto r = evaluate_reuse_scenario(testing::small_models(), job,
                                           StorageTier::kPersistentSsd,
                                           workload::ReusePattern::one_hour());
    EXPECT_DOUBLE_EQ(r.first_run.value(), r.repeat_run.value());
}

TEST(ReuseScenario, TotalRuntimeComposition) {
    const auto job = mk_job(1, AppKind::kSort, 30.0);
    const auto pattern = workload::ReusePattern{5, Seconds::from_hours(2.0)};
    const auto r = evaluate_reuse_scenario(testing::small_models(), job,
                                           StorageTier::kPersistentHdd, pattern);
    EXPECT_NEAR(r.total_runtime.value(),
                r.first_run.value() + 4 * r.repeat_run.value(), 1e-9);
}

TEST(ReuseScenario, LongLifetimeInflatesEphemeralCost) {
    // §3.2: holding ephSSD data means holding the VMs; a week of that
    // dwarfs everything.
    const auto job = mk_job(1, AppKind::kGrep, 40.0);
    const auto week = evaluate_reuse_scenario(testing::small_models(), job,
                                              StorageTier::kEphemeralSsd,
                                              workload::ReusePattern::one_week());
    const auto hour = evaluate_reuse_scenario(testing::small_models(), job,
                                              StorageTier::kEphemeralSsd,
                                              workload::ReusePattern::one_hour());
    EXPECT_GT(week.vm_cost.value(), 20.0 * hour.vm_cost.value());
    EXPECT_LT(week.utility, hour.utility);
}

TEST(ReuseScenario, PersistentVmCostOnlyDuringRuns) {
    const auto job = mk_job(1, AppKind::kGrep, 40.0);
    const auto week = evaluate_reuse_scenario(testing::small_models(), job,
                                              StorageTier::kObjectStore,
                                              workload::ReusePattern::one_week());
    const auto& cluster = testing::small_models().cluster();
    EXPECT_NEAR(week.vm_cost.value(),
                cluster.price_per_minute().value() * week.total_runtime.minutes(), 1e-9);
}

}  // namespace
}  // namespace cast::core
