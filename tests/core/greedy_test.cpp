#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

TEST(Greedy, PicksHighestSingleJobUtilityTier) {
    const workload::Workload w({mk_job(1, AppKind::kKMeans, 30.0)});
    PlanEvaluator eval(testing::small_models(), w);
    GreedySolver greedy(eval);
    const TieringPlan plan = greedy.solve();
    // Cross-check against an explicit scan of Utility(j, f).
    double best_u = -1.0;
    StorageTier best_t = StorageTier::kEphemeralSsd;
    for (StorageTier t : cloud::kAllTiers) {
        const double u = greedy.single_job_utility(w.job(0), t, 1.0);
        if (u > best_u) {
            best_u = u;
            best_t = t;
        }
    }
    EXPECT_EQ(plan.decision(0).tier, best_t);
}

TEST(Greedy, LargeCpuBoundJobLandsOnCheapTier) {
    // A KMeans job big enough that even persHDD's per-slot share exceeds
    // its compute rate performs alike everywhere, so the cheapest adequate
    // tier (persHDD) maximizes single-job utility (Fig. 1d). Small jobs
    // don't qualify: exact-fit block volumes are tiny and slow, which is
    // precisely the greedy-exact-fit pathology of §5.1.2.
    const workload::Workload w({mk_job(1, AppKind::kKMeans, 1800.0)});
    PlanEvaluator eval(testing::small_models(), w);
    const TieringPlan plan = GreedySolver(eval).solve();
    EXPECT_EQ(plan.decision(0).tier, StorageTier::kPersistentHdd);
}

TEST(Greedy, ExactFitUsesFactorOne) {
    const workload::Workload w(
        {mk_job(1, AppKind::kSort, 20.0), mk_job(2, AppKind::kGrep, 20.0)});
    PlanEvaluator eval(testing::small_models(), w);
    const TieringPlan plan = GreedySolver(eval).solve(GreedyOptions{.over_provision = false});
    for (const auto& d : plan.decisions()) EXPECT_DOUBLE_EQ(d.overprovision, 1.0);
}

TEST(Greedy, OverProvisioningBuysUtilityOnBlockTiers) {
    // On a tier whose bandwidth scales with capacity, an I/O-bound job can
    // buy speed with capacity (§3.1.2): for Sort on persSSD, k = 2 must
    // beat exact fit.
    const workload::Workload w({mk_job(1, AppKind::kSort, 60.0)});
    PlanEvaluator eval(testing::small_models(), w);
    GreedySolver greedy(eval);
    const double u1 = greedy.single_job_utility(w.job(0), StorageTier::kPersistentSsd, 1.0);
    const double u2 = greedy.single_job_utility(w.job(0), StorageTier::kPersistentSsd, 2.0);
    EXPECT_GT(u2, u1);
}

TEST(Greedy, OverProvisionedVariantNeverWorseThanExactFit) {
    const workload::Workload w(
        {mk_job(1, AppKind::kSort, 60.0), mk_job(2, AppKind::kGrep, 90.0)});
    PlanEvaluator eval(testing::small_models(), w);
    GreedySolver greedy(eval);
    const TieringPlan exact = greedy.solve(GreedyOptions{.over_provision = false});
    const TieringPlan over = greedy.solve(GreedyOptions{.over_provision = true});
    // Compare by greedy's own per-job metric: the chosen (tier, k) of the
    // over-provisioned variant dominates exact fit's choice per job.
    for (std::size_t i = 0; i < w.size(); ++i) {
        const double u_exact = greedy.single_job_utility(
            w.job(i), exact.decision(i).tier, exact.decision(i).overprovision);
        const double u_over = greedy.single_job_utility(
            w.job(i), over.decision(i).tier, over.decision(i).overprovision);
        EXPECT_GE(u_over, u_exact - 1e-12) << "job " << i;
    }
}

TEST(Greedy, UtilityOfInfeasiblePlacementIsZero) {
    PlanEvaluator eval(testing::small_models(),
                       workload::Workload({mk_job(1, AppKind::kSort, 10.0)}));
    GreedySolver greedy(eval);
    // 4 TB Sort cannot fit ephSSD on 5 VMs.
    EXPECT_DOUBLE_EQ(
        greedy.single_job_utility(mk_job(9, AppKind::kSort, 4000.0),
                                  StorageTier::kEphemeralSsd, 1.0),
        0.0);
}

TEST(Greedy, PlanCoversWholeWorkload) {
    const workload::Workload w({mk_job(1, AppKind::kSort, 10.0),
                                mk_job(2, AppKind::kJoin, 15.0),
                                mk_job(3, AppKind::kGrep, 20.0),
                                mk_job(4, AppKind::kKMeans, 12.0)});
    PlanEvaluator eval(testing::small_models(), w);
    const TieringPlan plan = GreedySolver(eval).solve();
    EXPECT_EQ(plan.size(), w.size());
    const auto e = eval.evaluate(plan);
    EXPECT_TRUE(e.feasible);
}

TEST(Greedy, PerJobUtilityIgnoresSharedCapacity) {
    // The myopia annealing fixes (§4.2.2): greedy's Utility(j, f) evaluates
    // a job at its lone exact-fit capacity, but in a full plan the tier
    // holds every co-placed job's capacity, so block-tier bandwidth — and
    // hence the realized per-job runtime — differs from what greedy
    // assumed. Demonstrate with three Sorts pinned on persSSD.
    const workload::Workload w({mk_job(1, AppKind::kSort, 40.0),
                                mk_job(2, AppKind::kSort, 40.0),
                                mk_job(3, AppKind::kSort, 40.0)});
    PlanEvaluator eval(testing::small_models(), w);
    const auto full = eval.evaluate(TieringPlan::uniform(3, StorageTier::kPersistentSsd));
    ASSERT_TRUE(full.feasible);
    PlanEvaluator solo_eval(testing::small_models(), workload::Workload({w.job(0)}));
    const auto solo = solo_eval.evaluate(TieringPlan::uniform(1, StorageTier::kPersistentSsd));
    ASSERT_TRUE(solo.feasible);
    // Pooled capacity is 3x -> per Fig. 2's scaling, the shared deployment
    // runs each job strictly faster than the isolated estimate.
    EXPECT_LT(full.job_runtimes[0].value(), 0.9 * solo.job_runtimes[0].value());
}

}  // namespace
}  // namespace cast::core
