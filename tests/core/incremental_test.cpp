// Incremental re-planning: delta application mappings, warm-start amend
// determinism (bit-identical at any worker count), neighborhood
// restriction, escalation triggers, the irrevocable online baseline, and
// the shared-cache arrival-storm hammer.
#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/castpp.hpp"
#include "core/eval_cache.hpp"
#include "test_support.hpp"
#include "workload/stream.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;
using workload::DeltaApplication;
using workload::JobDelta;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4)};
}

workload::Workload mixed_workload() {
    return workload::Workload(
        {mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
         mk_job(3, AppKind::kGrep, 480.0), mk_job(4, AppKind::kKMeans, 200.0),
         mk_job(5, AppKind::kSort, 160.0), mk_job(6, AppKind::kGrep, 280.0)});
}

CastOptions fast_options() {
    CastOptions o;
    o.annealing.iter_max = 1500;
    o.annealing.chains = 2;
    o.annealing.seed = 7;
    return o;
}

void expect_same_plan(const TieringPlan& a, const TieringPlan& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.decisions()[i].tier, b.decisions()[i].tier) << "job " << i;
        EXPECT_EQ(a.decisions()[i].overprovision, b.decisions()[i].overprovision)
            << "job " << i;
    }
}

// ---------------------------------------------------------------------------
// apply_delta: the one shared definition of delta -> job-set mapping.
// ---------------------------------------------------------------------------

TEST(ApplyDelta, MapsSurvivorsArrivalsAndDepartures) {
    const workload::Workload base = mixed_workload();  // ids 1..6
    JobDelta delta;
    delta.departures = {2, 5};
    workload::JobSpec revised = mk_job(3, AppKind::kGrep, 512.0);
    delta.updates = {revised};
    delta.arrivals = {mk_job(10, AppKind::kJoin, 64.0), mk_job(11, AppKind::kSort, 96.0)};

    const DeltaApplication applied = workload::apply_delta(base, delta);

    // Survivors 1,3,4,6 keep relative order; arrivals append in delta order.
    ASSERT_EQ(applied.workload.size(), 6u);
    EXPECT_EQ(applied.workload.job(0).id, 1);
    EXPECT_EQ(applied.workload.job(1).id, 3);
    EXPECT_EQ(applied.workload.job(2).id, 4);
    EXPECT_EQ(applied.workload.job(3).id, 6);
    EXPECT_EQ(applied.workload.job(4).id, 10);
    EXPECT_EQ(applied.workload.job(5).id, 11);
    // The update actually replaced the spec.
    EXPECT_DOUBLE_EQ(applied.workload.job(1).input.value(), 512.0);

    const std::vector<std::size_t> want_from = {0, 2, 3, 5, DeltaApplication::kNoPrior,
                                                DeltaApplication::kNoPrior};
    EXPECT_EQ(applied.survivor_from, want_from);
    // changed = updated survivors + arrivals, new-index space.
    EXPECT_EQ(applied.changed, (std::vector<std::size_t>{1, 4, 5}));
    // departed = prior indices of ids 2 and 5.
    EXPECT_EQ(applied.departed, (std::vector<std::size_t>{1, 4}));
}

TEST(ApplyDelta, RejectsBadReferences) {
    const workload::Workload base = mixed_workload();
    {
        JobDelta d;
        d.departures = {99};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
    {
        JobDelta d;
        d.departures = {2, 2};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
    {
        JobDelta d;
        d.updates = {mk_job(99, AppKind::kSort, 10.0)};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
    {
        JobDelta d;  // update targets a departing job
        d.departures = {3};
        d.updates = {mk_job(3, AppKind::kGrep, 1.0)};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
    {
        JobDelta d;  // arrival reuses a live id
        d.arrivals = {mk_job(4, AppKind::kSort, 10.0)};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
    {
        JobDelta d;  // arrival id appears twice in one delta
        d.arrivals = {mk_job(10, AppKind::kSort, 10.0), mk_job(10, AppKind::kJoin, 20.0)};
        EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
    }
}

TEST(ApplyDelta, RevalidatesReuseGroupInvariants) {
    workload::JobSpec a = mk_job(1, AppKind::kSort, 100.0);
    workload::JobSpec b = mk_job(2, AppKind::kGrep, 100.0);
    a.reuse_group = 1;
    b.reuse_group = 1;
    const workload::Workload base({a, b});
    JobDelta d;  // drift one member's input -> group inputs differ
    workload::JobSpec revised = a;
    revised.input = GigaBytes{140.0};
    d.updates = {revised};
    EXPECT_THROW((void)workload::apply_delta(base, d), ValidationError);
}

TEST(StreamSynthesis, DeterministicChainedTrace) {
    const workload::Workload initial = mixed_workload();
    workload::StreamOptions opts;
    opts.steps = 5;
    opts.churn = 0.34;
    opts.update_fraction = 0.2;

    const std::vector<JobDelta> a = workload::synthesize_stream(initial, 42, opts);
    const std::vector<JobDelta> b = workload::synthesize_stream(initial, 42, opts);
    ASSERT_EQ(a.size(), 5u);
    ASSERT_EQ(b.size(), 5u);
    workload::Workload live = initial;
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].departures, b[s].departures) << "step " << s;
        ASSERT_EQ(a[s].arrivals.size(), b[s].arrivals.size()) << "step " << s;
        for (std::size_t k = 0; k < a[s].arrivals.size(); ++k) {
            EXPECT_EQ(a[s].arrivals[k].id, b[s].arrivals[k].id);
            EXPECT_DOUBLE_EQ(a[s].arrivals[k].input.value(), b[s].arrivals[k].input.value());
        }
        // Departure count == arrival count, so the set size is invariant;
        // every delta applies cleanly to the chained job set.
        EXPECT_EQ(a[s].departures.size(), a[s].arrivals.size());
        live = workload::apply_delta(live, a[s]).workload;
        EXPECT_EQ(live.size(), initial.size());
    }
}

// ---------------------------------------------------------------------------
// IncrementalSolver.
// ---------------------------------------------------------------------------

class IncrementalTest : public ::testing::Test {
protected:
    static const CastResult& prior() {
        static const CastResult kPrior =
            plan_cast(testing::small_models(), mixed_workload(), fast_options());
        return kPrior;
    }

    static JobDelta small_delta() {
        JobDelta delta;
        delta.arrivals = {mk_job(10, AppKind::kJoin, 96.0)};
        delta.departures = {5};
        return delta;
    }
};

TEST_F(IncrementalTest, AmendBitIdenticalAcrossWorkerCounts) {
    const IncrementalSolver solver(testing::small_models(), fast_options());
    const AmendResult serial =
        solver.amend(mixed_workload(), prior().plan, small_delta(), nullptr);
    ASSERT_TRUE(serial.evaluation.feasible);

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(workers);
        EvalCache cache;
        const AmendResult pooled =
            solver.amend(mixed_workload(), prior().plan, small_delta(), &pool, &cache);
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expect_same_plan(serial.plan, pooled.plan);
        EXPECT_EQ(serial.evaluation.utility, pooled.evaluation.utility);
        EXPECT_EQ(serial.neighborhood, pooled.neighborhood);
        EXPECT_EQ(serial.escalated_cold, pooled.escalated_cold);
    }
}

TEST_F(IncrementalTest, AmendQualityAtLeastGreedyShadow) {
    const IncrementalSolver solver(testing::small_models(), fast_options());
    const AmendResult out = solver.amend(mixed_workload(), prior().plan, small_delta());
    ASSERT_TRUE(out.evaluation.feasible);
    EXPECT_GT(out.shadow_utility, 0.0);
    // The escalation rule guarantees the amendment is never materially
    // worse than the deterministic greedy shadow of a cold solve.
    EXPECT_GE(out.evaluation.utility,
              solver.policy().escalate_below * out.shadow_utility);
}

TEST_F(IncrementalTest, EscalationForcedAndDisabled) {
    AmendPolicy forced;
    forced.escalate_below = 10.0;  // amend can never reach 10x the shadow
    const IncrementalSolver always(testing::small_models(), fast_options(), forced);
    const AmendResult hot = always.amend(mixed_workload(), prior().plan, small_delta());
    EXPECT_TRUE(hot.escalated_cold);
    ASSERT_TRUE(hot.evaluation.feasible);

    AmendPolicy off;
    off.escalate_below = 0.0;
    const IncrementalSolver never(testing::small_models(), fast_options(), off);
    const AmendResult cool = never.amend(mixed_workload(), prior().plan, small_delta());
    EXPECT_FALSE(cool.escalated_cold);
    ASSERT_TRUE(cool.evaluation.feasible);
}

TEST_F(IncrementalTest, FrozenSurvivorsKeepPriorDecisions) {
    AmendPolicy policy;
    policy.capacity_slack = 1e9;   // suppress the capacity side entirely
    policy.escalate_below = 0.0;   // and the escape hatch to a cold solve
    const IncrementalSolver solver(testing::small_models(), fast_options(), policy);
    JobDelta delta;
    delta.arrivals = {mk_job(10, AppKind::kJoin, 96.0)};
    const AmendResult out = solver.amend(mixed_workload(), prior().plan, delta);
    ASSERT_TRUE(out.evaluation.feasible);
    // Neighborhood is exactly the arrival; every survivor is frozen at its
    // prior decision.
    EXPECT_EQ(out.neighborhood, (std::vector<std::size_t>{6}));
    for (std::size_t i = 0; i < mixed_workload().size(); ++i) {
        EXPECT_EQ(out.plan.decision(i).tier, prior().plan.decision(i).tier) << "job " << i;
        EXPECT_EQ(out.plan.decision(i).overprovision,
                  prior().plan.decision(i).overprovision)
            << "job " << i;
    }
}

TEST_F(IncrementalTest, NeighborhoodClosesOverReuseGroups) {
    workload::JobSpec a = mk_job(1, AppKind::kSort, 200.0);
    workload::JobSpec b = mk_job(2, AppKind::kGrep, 200.0);
    a.reuse_group = 7;
    b.reuse_group = 7;
    const workload::Workload base({a, b, mk_job(3, AppKind::kJoin, 150.0)});
    const CastResult cold =
        plan_cast_plus_plus(testing::small_models(), base, fast_options());

    AmendPolicy policy;
    policy.capacity_slack = 1e9;
    policy.escalate_below = 0.0;
    const IncrementalSolver solver(testing::small_models(), fast_options(), policy,
                                   /*reuse_aware=*/true);
    JobDelta delta;
    workload::JobSpec joiner = mk_job(10, AppKind::kKMeans, 200.0);
    joiner.reuse_group = 7;  // arrival joins the live group
    delta.arrivals = {joiner};
    const AmendResult out = solver.amend(base, cold.plan, delta);
    // The arrival drags its whole reuse group into the neighborhood.
    EXPECT_EQ(out.neighborhood, (std::vector<std::size_t>{0, 1, 3}));
    ASSERT_TRUE(out.evaluation.feasible);
    // Eq. 7: the amended plan keeps the group on one tier.
    EXPECT_EQ(out.plan.decision(0).tier, out.plan.decision(1).tier);
    EXPECT_EQ(out.plan.decision(0).tier, out.plan.decision(3).tier);
}

TEST_F(IncrementalTest, EmptyDeltaReturnsSurvivorsVerbatim) {
    const IncrementalSolver solver(testing::small_models(), fast_options());
    const AmendResult out = solver.amend(mixed_workload(), prior().plan, JobDelta{});
    expect_same_plan(out.plan, prior().plan);
    EXPECT_TRUE(out.neighborhood.empty());
    EXPECT_FALSE(out.escalated_cold);
    EXPECT_EQ(out.iterations, 0);
}

TEST_F(IncrementalTest, PlaceOnlineMatchesGreedyOnlyPolicy) {
    AmendPolicy greedy;
    greedy.greedy_only = true;
    const IncrementalSolver greedy_solver(testing::small_models(), fast_options(), greedy);
    const IncrementalSolver solver(testing::small_models(), fast_options());

    const AmendResult via_policy =
        greedy_solver.amend(mixed_workload(), prior().plan, small_delta());
    const AmendResult via_online =
        solver.place_online(mixed_workload(), prior().plan, small_delta());
    expect_same_plan(via_policy.plan, via_online.plan);
    EXPECT_TRUE(via_online.greedy_only);
    EXPECT_EQ(via_online.iterations, 0);
    EXPECT_FALSE(via_online.escalated_cold);
    // Survivors are irrevocable: id 5 departs, ids 1..4 and 6 land on new
    // indices 0..4 and must keep their prior decisions verbatim.
    for (std::size_t i = 0; i + 1 < via_online.plan.size(); ++i) {
        const std::size_t from = i < 4 ? i : i + 1;
        EXPECT_EQ(via_online.plan.decision(i).tier, prior().plan.decision(from).tier)
            << "survivor " << i;
    }
}

TEST_F(IncrementalTest, PinnedArrivalSeedsOnItsPin) {
    AmendPolicy policy;
    policy.greedy_only = true;
    const IncrementalSolver solver(testing::small_models(), fast_options(), policy);
    JobDelta delta;
    workload::JobSpec pinned = mk_job(10, AppKind::kJoin, 64.0);
    pinned.pinned_tier = StorageTier::kPersistentHdd;
    delta.arrivals = {pinned};
    const AmendResult out = solver.amend(mixed_workload(), prior().plan, delta);
    EXPECT_EQ(out.plan.decision(out.plan.size() - 1).tier, StorageTier::kPersistentHdd);
}

// Arrival storm: concurrent amend streams sharing ONE EvalCache must be
// bit-identical to serial streams with private caches (the cache is pure
// memoization). Run under TSan this is also the data-race hammer for the
// cache's shard locking on the amend path.
TEST_F(IncrementalTest, ArrivalStormSharedCacheMatchesSerial) {
    constexpr int kLanes = 4;
    constexpr int kSteps = 3;
    const IncrementalSolver solver(testing::small_models(), fast_options());

    workload::StreamOptions stream_opts;
    stream_opts.steps = kSteps;
    stream_opts.churn = 0.34;

    // Serial reference: each lane replayed alone with a private cache.
    std::vector<std::vector<AmendResult>> want(kLanes);
    for (int lane = 0; lane < kLanes; ++lane) {
        const std::vector<JobDelta> trace = workload::synthesize_stream(
            mixed_workload(), 100 + static_cast<std::uint64_t>(lane), stream_opts);
        EvalCache cache;
        workload::Workload live = mixed_workload();
        TieringPlan plan = prior().plan;
        for (const JobDelta& delta : trace) {
            AmendResult step = solver.amend(live, plan, delta, nullptr, &cache);
            live = step.workload;
            plan = step.plan;
            want[lane].push_back(std::move(step));
        }
    }

    EvalCache shared;
    std::vector<std::vector<AmendResult>> got(kLanes);
    std::vector<std::thread> threads;
    threads.reserve(kLanes);
    for (int lane = 0; lane < kLanes; ++lane) {
        threads.emplace_back([&, lane] {
            const std::vector<JobDelta> trace = workload::synthesize_stream(
                mixed_workload(), 100 + static_cast<std::uint64_t>(lane), stream_opts);
            workload::Workload live = mixed_workload();
            TieringPlan plan = prior().plan;
            for (const JobDelta& delta : trace) {
                AmendResult step = solver.amend(live, plan, delta, nullptr, &shared);
                live = step.workload;
                plan = step.plan;
                got[lane].push_back(std::move(step));
            }
        });
    }
    for (std::thread& t : threads) t.join();

    for (int lane = 0; lane < kLanes; ++lane) {
        ASSERT_EQ(got[lane].size(), want[lane].size());
        for (int s = 0; s < kSteps; ++s) {
            SCOPED_TRACE("lane=" + std::to_string(lane) + " step=" + std::to_string(s));
            expect_same_plan(got[lane][s].plan, want[lane][s].plan);
            EXPECT_EQ(got[lane][s].evaluation.utility, want[lane][s].evaluation.utility);
        }
    }
}

// The secretary-style regret comparison (arXiv:1901.07335): over one
// streaming trace, revising placements (amend) must not lose to the
// irrevocable online baseline that places each arrival once and never
// revisits. Everything here is deterministic, so the assertion is stable.
TEST_F(IncrementalTest, AmendDominatesIrrevocableOnlineBaseline) {
    const IncrementalSolver solver(testing::small_models(), fast_options());
    workload::StreamOptions stream_opts;
    stream_opts.steps = 4;
    stream_opts.churn = 0.34;
    const std::vector<JobDelta> trace =
        workload::synthesize_stream(mixed_workload(), 42, stream_opts);

    EvalCache amend_cache;
    EvalCache online_cache;
    workload::Workload amend_live = mixed_workload();
    TieringPlan amend_plan = prior().plan;
    workload::Workload online_live = mixed_workload();
    TieringPlan online_plan = prior().plan;
    double amend_total = 0.0;
    double online_total = 0.0;
    for (const JobDelta& delta : trace) {
        const AmendResult a =
            solver.amend(amend_live, amend_plan, delta, nullptr, &amend_cache);
        ASSERT_TRUE(a.evaluation.feasible);
        amend_live = a.workload;
        amend_plan = a.plan;
        amend_total += a.evaluation.utility;

        const AmendResult o =
            solver.place_online(online_live, online_plan, delta, &online_cache);
        ASSERT_TRUE(o.evaluation.feasible);
        online_live = o.workload;
        online_plan = o.plan;
        online_total += o.evaluation.utility;
    }
    EXPECT_GE(amend_total, online_total);
}

// Survivor runtimes are cache hits across amendments: a second amend over
// the same stream sees a strictly better hit rate than its cold start.
TEST_F(IncrementalTest, EvalCacheStaysWarmAcrossAmendments) {
    const IncrementalSolver solver(testing::small_models(), fast_options());
    EvalCache cache;
    const AmendResult first =
        solver.amend(mixed_workload(), prior().plan, small_delta(), nullptr, &cache);
    ASSERT_TRUE(first.evaluation.feasible);
    const EvalCacheStats after_first = cache.stats();

    JobDelta next;
    next.arrivals = {mk_job(11, AppKind::kGrep, 128.0)};
    const AmendResult second =
        solver.amend(first.workload, first.plan, next, nullptr, &cache);
    ASSERT_TRUE(second.evaluation.feasible);
    const EvalCacheStats after_second = cache.stats();
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_EQ(second.cache_stats.hits, after_second.hits);
}

}  // namespace
}  // namespace cast::core
