// SoA undo-log revert coverage: rejected candidates must restore the
// committed state bit-for-bit, including the paths the annealing loop
// exercises rarely — tier-pinned rejections (the lint gate fires before
// any runtime is touched), provider-capacity throws, zero-length staging
// legs (persSSD <-> persHDD moves stage nothing), and stacked undo entries
// for one job.
#include "core/soa_eval.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/utility.hpp"
#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using cloud::tier_index;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4)};
}

/// Snapshot of every committed field revert() must restore.
struct Committed {
    std::vector<std::uint8_t> tier;
    std::vector<double> overprov;
    std::vector<PlacementDecision> mirror;
    std::vector<double> runtime;
    CapacityBreakdown caps;
    double total_runtime;
    double vm_cost;
    double storage_cost;
    double utility;
};

Committed snapshot(const SoaState& state) {
    return Committed{state.tier,    state.overprov,      state.mirror,
                     state.runtime, state.caps,          state.total_runtime,
                     state.vm_cost, state.storage_cost,  state.utility};
}

void expect_restored(const SoaState& state, const Committed& want) {
    EXPECT_EQ(state.tier, want.tier);
    EXPECT_EQ(state.overprov, want.overprov);
    ASSERT_EQ(state.mirror.size(), want.mirror.size());
    for (std::size_t i = 0; i < want.mirror.size(); ++i) {
        EXPECT_EQ(state.mirror[i].tier, want.mirror[i].tier) << "job " << i;
        EXPECT_EQ(state.mirror[i].overprovision, want.mirror[i].overprovision)
            << "job " << i;
    }
    EXPECT_EQ(state.runtime, want.runtime);
    for (std::size_t t = 0; t < cloud::kTierCount; ++t) {
        EXPECT_EQ(state.caps.aggregate[t].value(), want.caps.aggregate[t].value());
        EXPECT_EQ(state.caps.per_vm[t].value(), want.caps.per_vm[t].value());
    }
    EXPECT_EQ(state.total_runtime, want.total_runtime);
    EXPECT_EQ(state.vm_cost, want.vm_cost);
    EXPECT_EQ(state.storage_cost, want.storage_cost);
    EXPECT_EQ(state.utility, want.utility);
    EXPECT_TRUE(state.decision_undo.empty());
    EXPECT_TRUE(state.runtime_undo.empty());
}

class SoaUndoTest : public ::testing::Test {
protected:
    /// Seed an SoA state from a uniform persSSD plan over `workload`.
    static void seed(const PlanEvaluator& eval, SoaState& state, const SoaEvaluator& soa,
                     StorageTier tier = StorageTier::kPersistentSsd) {
        TieringPlan plan = TieringPlan::uniform(eval.workload().size(), tier);
        for (std::size_t i = 0; i < eval.workload().size(); ++i) {
            if (eval.workload().job(i).pinned_tier) {
                plan.set_decision(i,
                                  PlacementDecision{*eval.workload().job(i).pinned_tier, 1.0});
            }
        }
        const PlanEvaluation pe = eval.evaluate(plan);
        ASSERT_TRUE(pe.feasible);
        soa.init(state, plan, pe);
    }
};

// A capacity-shifting move populates BOTH undo logs (every persSSD
// resident re-derives its runtime); revert must restore all of it.
TEST_F(SoaUndoTest, RevertRestoresStateAfterFeasibleCandidate) {
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
                            mk_job(3, AppKind::kGrep, 480.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);
    const Committed want = snapshot(state);

    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     2.0);
    const std::size_t changed[] = {0};
    ASSERT_TRUE(soa.evaluate_candidate(state, changed, nullptr));
    EXPECT_FALSE(state.runtime_undo.empty());  // persSSD capacity shifted

    soa.revert(state);
    expect_restored(state, want);

    // The restored state still evaluates exactly as before: a no-op
    // candidate reproduces the committed scalars bitwise.
    ASSERT_TRUE(soa.evaluate_candidate(state, std::span<const std::size_t>{}, nullptr));
    EXPECT_EQ(state.cand_utility, want.utility);
    EXPECT_EQ(state.cand_total, want.total_runtime);
}

// Tier-pinned rejection path: the lint gate fails the candidate before any
// capacity or runtime work, leaving only the decision log to replay.
TEST_F(SoaUndoTest, RevertAfterTierPinRejection) {
    workload::JobSpec pinned = mk_job(1, AppKind::kSort, 320.0);
    pinned.pinned_tier = StorageTier::kPersistentSsd;
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({pinned, mk_job(2, AppKind::kJoin, 240.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);
    const Committed want = snapshot(state);

    // Move the pinned job off its pin: rejected by check_tier_pins.
    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     1.0);
    const std::size_t changed[] = {0};
    EXPECT_FALSE(soa.evaluate_candidate(state, changed, nullptr));
    EXPECT_TRUE(state.runtime_undo.empty());  // runtimes never touched
    EXPECT_FALSE(state.decision_undo.empty());

    soa.revert(state);
    expect_restored(state, want);

    // A legal follow-up move on the unpinned job still works and matches
    // the AoS evaluator exactly.
    soa.set_decision(state, 1, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     1.0);
    const std::size_t changed2[] = {1};
    ASSERT_TRUE(soa.evaluate_candidate(state, changed2, nullptr));
    const PlanEvaluation aos = eval.evaluate(TieringPlan{state.mirror});
    ASSERT_TRUE(aos.feasible);
    EXPECT_EQ(state.cand_utility, aos.utility);
    soa.commit(state);
    EXPECT_EQ(state.utility, aos.utility);
}

// Reuse-group split rejection (the other lint gate) with group_moves off:
// moving one member alone must reject and revert cleanly.
TEST_F(SoaUndoTest, RevertAfterReuseGroupSplitRejection) {
    workload::JobSpec a = mk_job(1, AppKind::kSort, 200.0);
    workload::JobSpec b = mk_job(2, AppKind::kGrep, 200.0);
    a.reuse_group = 3;
    b.reuse_group = 3;
    const PlanEvaluator eval(testing::small_models(), workload::Workload({a, b}),
                             EvalOptions{.reuse_aware = true});
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);
    const Committed want = snapshot(state);

    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     1.0);
    const std::size_t changed[] = {0};
    EXPECT_FALSE(soa.evaluate_candidate(state, changed, nullptr));
    soa.revert(state);
    expect_restored(state, want);
}

// Provider-capacity throw: a candidate overflowing ephSSD's per-VM volume
// limit rejects after the capacity pass but before runtimes; the decision
// log alone restores the state.
TEST_F(SoaUndoTest, RevertAfterProviderCapacityThrow) {
    // Sort with 3 TB input needs ~9 TB on its tier; on the small 5-worker
    // cluster that is ~1.8 TB/VM on ephSSD — beyond the 4x375 GB limit.
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({mk_job(1, AppKind::kSort, 3000.0), mk_job(2, AppKind::kJoin, 64.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa, StorageTier::kObjectStore);
    const Committed want = snapshot(state);

    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kEphemeralSsd)),
                     1.0);
    const std::size_t changed[] = {0};
    EXPECT_FALSE(soa.evaluate_candidate(state, changed, nullptr));
    EXPECT_TRUE(state.runtime_undo.empty());

    soa.revert(state);
    expect_restored(state, want);
}

// Zero-length staging legs: persSSD <-> persHDD moves stage nothing
// (StagingLegs::for_tier is all-false off ephSSD). Revert and re-evaluate
// must be idempotent, and the candidate must match the AoS evaluator.
TEST_F(SoaUndoTest, ZeroLengthStagingLegMovesRevertAndReevaluate) {
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0),
                            mk_job(3, AppKind::kKMeans, 160.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);

    const auto hdd = static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd));
    soa.set_decision(state, 1, hdd, 1.5);
    const std::size_t changed[] = {1};
    ASSERT_TRUE(soa.evaluate_candidate(state, changed, nullptr));
    const double first_utility = state.cand_utility;
    const PlanEvaluation aos = eval.evaluate(TieringPlan{state.mirror});
    ASSERT_TRUE(aos.feasible);
    EXPECT_EQ(first_utility, aos.utility);

    soa.revert(state);
    // Same move again after revert: bitwise the same candidate.
    soa.set_decision(state, 1, hdd, 1.5);
    ASSERT_TRUE(soa.evaluate_candidate(state, changed, nullptr));
    EXPECT_EQ(state.cand_utility, first_utility);
    soa.revert(state);
}

// Stacked undo entries: two staged changes to the SAME job must unwind in
// reverse order back to the committed decision.
TEST_F(SoaUndoTest, StackedDecisionsOnOneJobUnwindInOrder) {
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);
    const Committed want = snapshot(state);

    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     2.0);
    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kObjectStore)),
                     1.0);
    const std::size_t changed[] = {0};
    ASSERT_TRUE(soa.evaluate_candidate(state, changed, nullptr));
    soa.revert(state);
    expect_restored(state, want);
}

// Commit promotes the candidate and clears the logs; a revert right after
// commit must be a no-op on the newly committed state.
TEST_F(SoaUndoTest, RevertAfterCommitIsNoop) {
    const PlanEvaluator eval(
        testing::small_models(),
        workload::Workload({mk_job(1, AppKind::kSort, 320.0), mk_job(2, AppKind::kJoin, 240.0)}));
    const SoaEvaluator soa(eval);
    SoaState state;
    seed(eval, state, soa);

    soa.set_decision(state, 0, static_cast<std::uint8_t>(tier_index(StorageTier::kPersistentHdd)),
                     1.25);
    const std::size_t changed[] = {0};
    ASSERT_TRUE(soa.evaluate_candidate(state, changed, nullptr));
    soa.commit(state);
    const Committed committed = snapshot(state);
    soa.revert(state);  // empty logs: nothing to replay
    expect_restored(state, committed);
}

}  // namespace
}  // namespace cast::core
