// Concurrency hammer for the batch engine (runs in the TSan CI lane via
// core_tests): several threads drive BatchRunner batches over one shared
// thread pool while also evaluating plans through one shared EvalCache —
// the exact sharing pattern of the experiment drivers (profiling batches
// inside cluster planning inside an annealing evaluation). TSan verifies
// the synchronization; the assertions verify the results stay
// bit-identical under the contention.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/eval_cache.hpp"
#include "core/utility.hpp"
#include "sim/batch.hpp"
#include "test_support.hpp"
#include "workload/facebook.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "hammer-" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

std::vector<sim::BatchConfig> hammer_configs() {
    std::vector<sim::BatchConfig> configs;
    for (int i = 0; i < 12; ++i) {
        const StorageTier tier =
            i % 2 == 0 ? StorageTier::kPersistentSsd : StorageTier::kPersistentHdd;
        sim::TierCapacities caps;
        caps.set(tier, GigaBytes{150.0 + 25.0 * (i % 4)});
        configs.push_back(sim::BatchConfig{
            sim::JobPlacement::on_tier(
                mk_job(i + 1, i % 3 == 0 ? AppKind::kSort : AppKind::kGrep, 2.0 + i % 3),
            tier),
            caps, sim::SimOptions{.seed = 11 + static_cast<std::uint64_t>(i),
                                  .jitter_sigma = 0.06}});
    }
    return configs;
}

TEST(BatchHammer, ConcurrentBatchesAndSharedEvalCacheStayDeterministic) {
    const auto cluster = cloud::ClusterSpec::paper_single_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const sim::BatchRunner runner(cluster, catalog);
    const std::vector<sim::BatchConfig> configs = hammer_configs();

    // Reference outcomes, computed serially up front.
    const std::vector<sim::BatchOutcome> reference = runner.run(configs);

    const auto& models = testing::small_models();
    const workload::Workload workload = workload::synthesize_facebook_workload(3);
    const PlanEvaluator evaluator(models, workload);
    const TieringPlan plan =
        TieringPlan::uniform(workload.size(), StorageTier::kPersistentSsd);
    EvalCache cache;
    const PlanEvaluation ref_eval = evaluator.evaluate(plan, &cache);

    ThreadPool pool(4);
    constexpr int kHammerThreads = 4;
    constexpr int kRounds = 3;
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kHammerThreads, 0);
    threads.reserve(kHammerThreads);
    for (int t = 0; t < kHammerThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                // Batch simulation over the shared pool...
                const auto outcomes = runner.run(configs, &pool);
                for (std::size_t i = 0; i < outcomes.size(); ++i) {
                    if (outcomes[i].result.makespan.value() !=
                        reference[i].result.makespan.value()) {
                        ++mismatches[t];
                    }
                }
                // ...interleaved with evaluations through the shared cache.
                const PlanEvaluation ev = evaluator.evaluate(plan, &cache);
                if (ev.utility != ref_eval.utility ||
                    ev.total_runtime.value() != ref_eval.total_runtime.value()) {
                    ++mismatches[t];
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kHammerThreads; ++t) {
        EXPECT_EQ(mismatches[t], 0) << "thread " << t << " saw divergent results";
    }
}

}  // namespace
}  // namespace cast::core
