// Fixture: C011 must fire on node-based containers in a solver hot-path
// file (matched by basename, which is how the fixture borrows the rule's
// file scope). std::set_difference is an algorithm, not a container, and
// must stay silent.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {
inline std::map<int, double> utilities;           // line 12: std::map
inline std::unordered_map<int, int> tier_of;      // line 13: std::unordered_map
inline std::set<int> visited;                     // line 14: std::set
inline void diff(const std::vector<int>& a, const std::vector<int>& b,
                 std::vector<int>& out) {
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));  // algorithm: no finding
}
}  // namespace fixture
