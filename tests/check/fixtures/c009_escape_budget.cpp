// Fixture: C009 must fire when CAST_NO_TSA escapes exceed the repo budget
// of 3, even though each one carries a justification (C007-clean).
#include "common/annotations.hpp"

namespace fixture {
void a() CAST_NO_TSA;  // justified: fixture escape one of four
void b() CAST_NO_TSA;  // justified: fixture escape two of four
void c() CAST_NO_TSA;  // justified: fixture escape three of four
void d() CAST_NO_TSA;  // justified: fixture escape four of four
}  // namespace fixture
