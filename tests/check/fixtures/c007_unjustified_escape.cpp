// Fixture: C007 must fire on an unjustified CAST_NO_TSA escape.
#include "common/annotations.hpp"

namespace fixture {
void sneaky() CAST_NO_TSA;
void honest() CAST_NO_TSA;  // justified: fixture demonstrating an accepted escape
}  // namespace fixture
