// Fixture: C003 must fire on every seed-free randomness/time source.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {
int draw() {
    std::random_device rd;            // line 8: hardware entropy
    std::mt19937 gen(rd());           // line 9: implementation-defined PRNG
    return rand() + static_cast<int>(time(nullptr));  // line 10: rand + time
}
}  // namespace fixture
