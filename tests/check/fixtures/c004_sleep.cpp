// Fixture: C004 must fire on a real sleep outside faults/retry files.
#include <chrono>
#include <thread>

namespace fixture {
void nap() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // line 7
}
}  // namespace fixture
