// Fixture: C008 must fire on an ad-hoc std::thread outside the pool/service.
#include <thread>

namespace fixture {
void spawn() {
    std::thread worker([] {});  // line 6: ad-hoc thread
    worker.join();
}
}  // namespace fixture
