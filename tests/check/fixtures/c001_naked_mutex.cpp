// Fixture: C001 must fire on a naked std lock type outside annotations.hpp.
#include <mutex>

namespace fixture {
std::mutex g_mutex;  // line 5: naked mutex
void touch() {
    std::lock_guard lock(g_mutex);  // line 7: naked lock_guard
}
}  // namespace fixture
