// Fixture: C005 must fire on allocation in a sim hot-path file (matched by
// basename, which is how the fixture borrows the rule's file scope).
#pragma once
#include <cstdlib>

namespace fixture {
inline int* alloc_in_hot_path() {
    return new int[16];  // line 8: hot-path allocation
}
inline void* alloc_c() { return malloc(8); }  // line 10: hot-path malloc
}  // namespace fixture
