// Fixture: a rule-abiding file; cast_check must report zero findings.
#include "common/annotations.hpp"

namespace fixture {
class Counter {
public:
    void bump() {
        cast::LockGuard lock(mutex_);
        ++count_;
    }
    [[nodiscard]] bool try_read(int& out) {
        cast::LockGuard lock(mutex_);
        out = count_;
        return true;
    }

private:
    cast::Mutex mutex_;
    int count_ CAST_GUARDED_BY(mutex_) = 0;
};
}  // namespace fixture
