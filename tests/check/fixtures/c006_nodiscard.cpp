// Fixture: C006 must fire on a try_*/-or_null return without [[nodiscard]].
namespace fixture {
struct Queue {
    bool try_claim(int slot);          // line 4: discardable failure signal
    int* entry_or_null(int slot);      // line 5: discardable null
    [[nodiscard]] bool try_fine(int);  // annotated: must NOT fire
    void try_void();                   // void return: must NOT fire
};
}  // namespace fixture
