// Fixture: C002 must fire on a naked std::condition_variable.
#include <condition_variable>

namespace fixture {
std::condition_variable g_cv;  // line 5: naked condition_variable
}  // namespace fixture
