// Fixture: ad-hoc stderr telemetry in the serve layer. The directory name
// puts "serve/" in the relative path, so C010 applies; src/obs (and this
// comment's std::cerr mention) must not trip it.
#include <cstdio>
#include <iostream>

void report_shed(int shed) {
    std::cerr << "shed=" << shed << "\n";
    std::fprintf(stderr, "shed=%d\n", shed);
}
