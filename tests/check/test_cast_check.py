#!/usr/bin/env python3
"""Self-tests for tools/cast_check.py.

Two halves, mirroring the cast_lint fixture discipline:
  * every rule is proven LIVE: each fixture under fixtures/ carries one
    deliberate violation class, and the test asserts the expected rule ID
    fires at exactly the expected lines (and nothing else fires);
  * the real tree is proven CLEAN: cast_check --strict over src/ must
    report zero findings, so a regression in either the tree or the
    linter turns this test red.

Runs under plain unittest (no pytest in the image); registered with ctest
as cast_check_selftest.
"""

from __future__ import annotations

import json
import subprocess
import sys
import unittest
from pathlib import Path

TEST_DIR = Path(__file__).resolve().parent
REPO_ROOT = TEST_DIR.parent.parent
CAST_CHECK = REPO_ROOT / "tools" / "cast_check.py"
FIXTURES = TEST_DIR / "fixtures"


def run_check(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CAST_CHECK), *args],
        capture_output=True, text=True, check=False)


def findings_for(path: Path) -> tuple[list[dict], int]:
    proc = run_check("--json", str(path))
    report = json.loads(proc.stdout)
    return report["findings"], proc.returncode


class RuleFiresExactlyWhereExpected(unittest.TestCase):
    # fixture -> list of (rule, line); "(repo)"-scoped rules use line None.
    EXPECTED = {
        "c001_naked_mutex.cpp": [("C001", 5), ("C001", 7)],
        "c002_naked_condvar.cpp": [("C002", 5)],
        "c003_nondeterminism.cpp": [("C003", 8), ("C003", 9), ("C003", 10),
                                    ("C003", 10)],
        "c004_sleep.cpp": [("C004", 7)],
        "hotpath/flow_engine.hpp": [("C005", 8), ("C005", 10)],
        "c006_nodiscard.cpp": [("C006", 4), ("C006", 5)],
        "c007_unjustified_escape.cpp": [("C007", 5)],
        "c008_adhoc_thread.cpp": [("C008", 6)],
        "c009_escape_budget.cpp": [("C009", None)],
        "serve/adhoc_cerr.cpp": [("C010", 8), ("C010", 9)],
        "solver/annealing.cpp": [("C011", 12), ("C011", 13), ("C011", 14)],
    }

    def test_each_rule_fires_at_expected_lines(self):
        for name, expected in self.EXPECTED.items():
            with self.subTest(fixture=name):
                found, rc = findings_for(FIXTURES / name)
                got = sorted((f["rule"], f["line"] if f["subject"] != "(repo)"
                              else None) for f in found)
                self.assertEqual(got, sorted(expected),
                                 f"{name}: findings diverged: {found}")
                self.assertNotEqual(rc, 0 if any(
                    r != "C006" for r, _ in expected) else None,
                    f"{name}: error findings must fail the run")

    def test_every_rule_id_has_a_live_fixture(self):
        covered = {rule for rules in self.EXPECTED.values() for rule, _ in rules}
        self.assertEqual(covered,
                         {"C001", "C002", "C003", "C004", "C005", "C006",
                          "C007", "C008", "C009", "C010", "C011"})

    def test_clean_fixture_reports_nothing(self):
        found, rc = findings_for(FIXTURES / "clean.cpp")
        self.assertEqual(found, [])
        self.assertEqual(rc, 0)


class StrictTreeIsClean(unittest.TestCase):
    def test_src_tree_strict_zero_findings(self):
        proc = run_check("--strict", "--json", str(REPO_ROOT / "src"))
        report = json.loads(proc.stdout)
        self.assertEqual(report["findings"], [],
                         "tree findings:\n" + proc.stdout)
        self.assertEqual(report["errors"], 0)
        self.assertEqual(report["warnings"], 0)
        self.assertEqual(proc.returncode, 0)


class JsonMirrorsCastLintSchema(unittest.TestCase):
    """Same top-level and per-finding shape as lint::Report::write_json."""

    def test_schema_shape(self):
        proc = run_check("--json", str(FIXTURES / "c001_naked_mutex.cpp"))
        report = json.loads(proc.stdout)
        self.assertEqual(set(report) - {"source"},
                         {"errors", "warnings", "findings"})
        self.assertIsInstance(report["errors"], int)
        self.assertIsInstance(report["warnings"], int)
        for f in report["findings"]:
            self.assertLessEqual(
                set(f), {"rule", "severity", "subject", "message",
                         "fix_hint", "line"})
            self.assertRegex(f["rule"], r"^C\d{3}$")
            self.assertIn(f["severity"], ("error", "warning", "info"))
            self.assertIsInstance(f["line"], int)

    def test_severity_orders_errors_first(self):
        mixed = [str(FIXTURES / "c001_naked_mutex.cpp"),
                 str(FIXTURES / "c006_nodiscard.cpp")]
        proc = run_check("--json", *mixed)
        severities = [f["severity"]
                      for f in json.loads(proc.stdout)["findings"]]
        self.assertEqual(severities, sorted(
            severities, key=("error", "warning", "info").index))


class StrictFlagSemantics(unittest.TestCase):
    def test_warning_only_passes_without_strict(self):
        proc = run_check(str(FIXTURES / "c006_nodiscard.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_warning_only_fails_with_strict(self):
        proc = run_check("--strict", str(FIXTURES / "c006_nodiscard.cpp"))
        self.assertEqual(proc.returncode, 1, proc.stdout)


if __name__ == "__main__":
    unittest.main()
