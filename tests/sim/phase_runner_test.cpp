#include "sim/phase_runner.hpp"

#include <gtest/gtest.h>

namespace cast::sim {
namespace {

using cast::literals::operator""_MBps;

TEST(PhaseRunner, EmptyPhaseTakesNoTime) {
    FlowEngine e;
    EXPECT_DOUBLE_EQ(run_phase(e, {}, 1, 1).value(), 0.0);
}

TEST(PhaseRunner, SingleTaskSingleSegment) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 50.0, 1e9}}}};
    EXPECT_DOUBLE_EQ(run_phase(e, std::move(tasks), 1, 4).value(), 0.5);
}

TEST(PhaseRunner, SegmentsRunSequentially) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    // 50 MB at pool speed, then 100 MB capped at 10 MB/s: 0.5 + 10 s.
    std::vector<SimTask> tasks = {
        SimTask{0, {Segment{r, 50.0, 1e9}, Segment{r, 100.0, 10.0}}}};
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1).value(), 10.5, 1e-9);
}

TEST(PhaseRunner, SlotLimitCreatesWaves) {
    FlowEngine e;
    const ResourceId unlimited = e.add_resource(MBytesPerSec{1e12});
    // 4 tasks, 2 slots, each takes 1 s at its cap -> 2 waves -> 2 s.
    std::vector<SimTask> tasks(4, SimTask{0, {Segment{unlimited, 10.0, 10.0}}});
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 2).value(), 2.0, 1e-9);
}

TEST(PhaseRunner, SlotFreesImmediatelyOnCompletion) {
    FlowEngine e;
    const ResourceId unlimited = e.add_resource(MBytesPerSec{1e12});
    // One slot; a short task then a long one queued behind it.
    std::vector<SimTask> tasks = {SimTask{0, {Segment{unlimited, 1.0, 1.0}}},
                                  SimTask{0, {Segment{unlimited, 3.0, 1.0}}}};
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1).value(), 4.0, 1e-9);
}

TEST(PhaseRunner, PerVmSlotsAreIndependent) {
    FlowEngine e;
    const ResourceId unlimited = e.add_resource(MBytesPerSec{1e12});
    // Two VMs, one slot each: 2 tasks per VM of 1 s each -> 2 s total (not 4).
    std::vector<SimTask> tasks = {SimTask{0, {Segment{unlimited, 1.0, 1.0}}},
                                  SimTask{0, {Segment{unlimited, 1.0, 1.0}}},
                                  SimTask{1, {Segment{unlimited, 1.0, 1.0}}},
                                  SimTask{1, {Segment{unlimited, 1.0, 1.0}}}};
    EXPECT_NEAR(run_phase(e, std::move(tasks), 2, 1).value(), 2.0, 1e-9);
}

TEST(PhaseRunner, ContentionOnSharedPool) {
    FlowEngine e;
    const ResourceId pool = e.add_resource(100.0_MBps);
    // 2 tasks sharing a 100 MB/s pool, 100 MB each, uncapped: both run at
    // 50 -> 2 s.
    std::vector<SimTask> tasks(2, SimTask{0, {Segment{pool, 100.0, 1e9}}});
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 2).value(), 2.0, 1e-9);
}

TEST(PhaseRunner, StragglerDominatesMakespan) {
    // The Fig. 5 mechanism in miniature: one slow-capped task pins the
    // phase even when the others finish quickly.
    FlowEngine e;
    const ResourceId pool = e.add_resource(1000.0_MBps);
    std::vector<SimTask> tasks(8, SimTask{0, {Segment{pool, 100.0, 100.0}}});
    tasks.push_back(SimTask{0, {Segment{pool, 100.0, 2.0}}});  // straggler
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 16).value(), 50.0, 1e-6);
}

TEST(PhaseRunner, ChainedPhasesAccumulateEngineClock) {
    FlowEngine e;
    const ResourceId unlimited = e.add_resource(MBytesPerSec{1e12});
    (void)run_phase(e, {SimTask{0, {Segment{unlimited, 2.0, 1.0}}}}, 1, 1);
    const Seconds second = run_phase(e, {SimTask{0, {Segment{unlimited, 3.0, 1.0}}}}, 1, 1);
    EXPECT_NEAR(second.value(), 3.0, 1e-9);  // phase time, not absolute
    EXPECT_NEAR(e.now().value(), 5.0, 1e-9);
}

TEST(PhaseRunner, RejectsBadTasks) {
    FlowEngine e;
    const ResourceId r = e.add_resource(10.0_MBps);
    std::vector<SimTask> bad_vm = {SimTask{5, {Segment{r, 1.0, 1.0}}}};
    EXPECT_THROW((void)run_phase(e, std::move(bad_vm), 2, 1), PreconditionError);
    std::vector<SimTask> no_segments = {SimTask{0, {}}};
    EXPECT_THROW((void)run_phase(e, std::move(no_segments), 1, 1), PreconditionError);
}

TEST(PhaseRunner, ManyTasksComplete) {
    FlowEngine e;
    const ResourceId pool = e.add_resource(1000.0_MBps);
    std::vector<SimTask> tasks;
    for (int i = 0; i < 500; ++i) {
        tasks.push_back(SimTask{i % 4, {Segment{pool, 10.0, 50.0}}});
    }
    const Seconds t = run_phase(e, std::move(tasks), 4, 8);
    // 5000 MB through a 1000 MB/s pool: at least 5 s.
    EXPECT_GE(t.value(), 5.0 - 1e-9);
}

}  // namespace
}  // namespace cast::sim
