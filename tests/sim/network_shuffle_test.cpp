// Tests for the multi-node shuffle network pool and the object-store
// aggregate ceilings — the two cluster-scale effects that do not exist on
// a single node.
#include <gtest/gtest.h>

#include "sim/mapreduce.hpp"

namespace cast::sim {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec sort_job(double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = 1,
                             .name = "net-sort",
                             .app = AppKind::kSort,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

ClusterSim sim_with_network(int vms, double network_mbps) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = vms;
    cluster.worker.shuffle_network_bw = MBytesPerSec{network_mbps};
    TierCapacities caps;
    caps.set(StorageTier::kPersistentSsd, GigaBytes{500.0});
    caps.set(StorageTier::kEphemeralSsd, GigaBytes{375.0});
    return ClusterSim(cluster, cloud::StorageCatalog::google_cloud(), caps,
                      SimOptions{.seed = 4, .jitter_sigma = 0.0});
}

TEST(NetworkShuffle, MultiNodeShuffleBoundByNetwork) {
    // Halving the network bandwidth must roughly double a network-bound
    // shuffle phase on a multi-node cluster.
    const auto job = sort_job(32.0);
    const auto fast = sim_with_network(4, 200.0)
                          .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
                          .phases;
    const auto slow = sim_with_network(4, 100.0)
                          .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
                          .phases;
    EXPECT_NEAR(slow.shuffle.value() / fast.shuffle.value(), 2.0, 0.2);
    // Map and reduce phases touch disks, not the network: unchanged.
    EXPECT_NEAR(slow.map.value(), fast.map.value(), 1e-6);
    EXPECT_NEAR(slow.reduce.value(), fast.reduce.value(), 1e-6);
}

TEST(NetworkShuffle, SingleNodeShuffleIgnoresNetwork) {
    const auto job = sort_job(16.0);
    const double a = sim_with_network(1, 200.0)
                         .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
                         .phases.shuffle.value();
    const double b = sim_with_network(1, 20.0)
                         .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
                         .phases.shuffle.value();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(NetworkShuffle, EphemeralAdvantageShrinksAtScale) {
    // On one node the shuffle runs at local-disk speed, so ephSSD is much
    // faster than persSSD; on a multi-node cluster both shuffle through
    // the same network pool and the gap narrows (the paper's Fig. 7
    // ephSSD-100% story).
    const auto job = sort_job(32.0);
    auto ratio_at = [&](int vms) {
        auto s = sim_with_network(vms, 140.0);
        JobPlacement eph = JobPlacement::on_tier(job, StorageTier::kEphemeralSsd);
        eph.stage_in = false;
        eph.stage_out = false;
        const double t_eph = s.run_job(eph).phases.processing().value();
        const double t_ssd =
            s.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
                .phases.processing()
                .value();
        return t_ssd / t_eph;
    };
    EXPECT_GT(ratio_at(1), ratio_at(4) + 0.2);
}

TEST(ObjectStoreCeilings, StageInSaturatesAtBucketLimit) {
    // Download throughput grows with VM count only up to the 1200 MB/s
    // bucket read ceiling (265 * 5 > 1200 already).
    const auto job = sort_job(64.0);
    auto stage_in_at = [&](int vms) {
        return sim_with_network(vms, 1000.0)
            .run_job(JobPlacement::on_tier(job, StorageTier::kEphemeralSsd))
            .phases.stage_in.value();
    };
    const double t2 = stage_in_at(2);   // 530 MB/s aggregate
    const double t4 = stage_in_at(4);   // 1060 MB/s
    const double t8 = stage_in_at(8);   // capped at 1200
    const double t16 = stage_in_at(16); // still 1200
    EXPECT_NEAR(t2 / t4, 2.0, 0.1);
    EXPECT_NEAR(t8 / t16, 1.0, 0.05);
}

TEST(ObjectStoreCeilings, WritesCapLowerThanReads) {
    // The same volume uploads slower than it downloads on a big cluster
    // (500 vs 1200 MB/s aggregate).
    const auto job = sort_job(64.0);  // output == input for Sort
    const auto phases = sim_with_network(16, 1000.0)
                            .run_job(JobPlacement::on_tier(job, StorageTier::kEphemeralSsd))
                            .phases;
    EXPECT_GT(phases.stage_out.value(), 1.8 * phases.stage_in.value());
}

TEST(RunSerial, MixedPlacementsAccumulateIndependently) {
    auto sim = sim_with_network(2, 140.0);
    workload::JobSpec a = sort_job(8.0);
    a.id = 1;
    workload::JobSpec b = sort_job(8.0);
    b.id = 2;
    std::vector<JobPlacement> placements = {
        JobPlacement::on_tier(a, StorageTier::kPersistentSsd),
        JobPlacement::on_tier(b, StorageTier::kEphemeralSsd),
    };
    const auto results = sim.run_serial(placements);
    ASSERT_EQ(results.size(), 2u);
    // Each serial job matches its standalone run exactly (no cross-job
    // state in the simulator).
    EXPECT_DOUBLE_EQ(results[0].makespan.value(),
                     sim.run_job(placements[0]).makespan.value());
    EXPECT_DOUBLE_EQ(results[1].makespan.value(),
                     sim.run_job(placements[1]).makespan.value());
}

}  // namespace
}  // namespace cast::sim
