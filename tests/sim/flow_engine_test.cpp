#include "sim/flow_engine.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace cast::sim {
namespace {

using cast::literals::operator""_MBps;

TEST(FlowEngine, SingleFlowRunsAtCap) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId f = e.start_flow(r, 50.0, 10.0);  // capped below the pool
    EXPECT_DOUBLE_EQ(e.flow_rate(f), 10.0);
    const auto done = e.advance();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], f);
    EXPECT_DOUBLE_EQ(e.now().value(), 5.0);  // 50 MB / 10 MB/s
    EXPECT_TRUE(e.flow_done(f));
}

TEST(FlowEngine, SingleFlowLimitedByPool) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    e.start_flow(r, 200.0, 1e9);
    (void)e.advance();
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);  // 200 MB / 100 MB/s
}

TEST(FlowEngine, EqualFlowsShareEqually) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId a = e.start_flow(r, 100.0, 1e9);
    const FlowId b = e.start_flow(r, 100.0, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(a), 50.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(b), 50.0);
    const auto done = e.advance();
    EXPECT_EQ(done.size(), 2u);  // both finish together
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);
}

TEST(FlowEngine, WaterFillingRedistributesCappedSurplus) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId slow = e.start_flow(r, 1000.0, 10.0);  // cap 10
    const FlowId fast = e.start_flow(r, 1000.0, 1e9);
    // Equal share would be 50/50; the capped flow frees 40 for the other.
    EXPECT_DOUBLE_EQ(e.flow_rate(slow), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(fast), 90.0);
}

TEST(FlowEngine, WaterFillingThreeTiersOfCaps) {
    FlowEngine e;
    const ResourceId r = e.add_resource(90.0_MBps);
    const FlowId f1 = e.start_flow(r, 1e6, 10.0);
    const FlowId f2 = e.start_flow(r, 1e6, 25.0);
    const FlowId f3 = e.start_flow(r, 1e6, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(f1), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(f2), 25.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(f3), 55.0);
}

TEST(FlowEngine, DepartureSpeedsUpRemaining) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    e.start_flow(r, 50.0, 1e9);             // finishes first (1 s at 50)
    const FlowId big = e.start_flow(r, 150.0, 1e9);
    (void)e.advance();                      // t = 1.0: small done, big has 100 left
    EXPECT_DOUBLE_EQ(e.now().value(), 1.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(big), 100.0);  // now alone
    (void)e.advance();
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);  // 100 MB at 100 MB/s
}

TEST(FlowEngine, IndependentResourcesDoNotInterfere) {
    FlowEngine e;
    const ResourceId r1 = e.add_resource(10.0_MBps);
    const ResourceId r2 = e.add_resource(1000.0_MBps);
    const FlowId a = e.start_flow(r1, 100.0, 1e9);
    const FlowId b = e.start_flow(r2, 100.0, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(a), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(b), 1000.0);
}

TEST(FlowEngine, ZeroDemandFlowCompletesWithoutTimeAdvance) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId f = e.start_flow(r, 0.0, 1.0);
    const auto done = e.advance();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], f);
    EXPECT_DOUBLE_EQ(e.now().value(), 0.0);
}

TEST(FlowEngine, AdvanceWithNoFlowsReturnsEmpty) {
    FlowEngine e;
    (void)e.add_resource(10.0_MBps);
    EXPECT_TRUE(e.advance().empty());
}

TEST(FlowEngine, ConservationOfWork) {
    // Total bytes delivered per unit time never exceeds resource capacity:
    // with three competing flows of distinct sizes, completion times must
    // be consistent with integral capacity use.
    FlowEngine e;
    const ResourceId r = e.add_resource(30.0_MBps);
    e.start_flow(r, 30.0, 1e9);
    e.start_flow(r, 60.0, 1e9);
    e.start_flow(r, 90.0, 1e9);
    double last = 0.0;
    std::size_t completed = 0;
    while (true) {
        const auto done = e.advance();
        if (done.empty()) break;
        completed += done.size();
        last = e.now().value();
    }
    EXPECT_EQ(completed, 3u);
    // 180 MB total through 30 MB/s = exactly 6 s regardless of sharing.
    EXPECT_NEAR(last, 6.0, 1e-9);
}

TEST(FlowEngine, InvalidInputsRejected) {
    FlowEngine e;
    EXPECT_THROW((void)e.add_resource(0.0_MBps), PreconditionError);
    const ResourceId r = e.add_resource(10.0_MBps);
    EXPECT_THROW((void)e.start_flow(r + 1, 10.0, 1.0), PreconditionError);
    EXPECT_THROW((void)e.start_flow(r, -1.0, 1.0), PreconditionError);
    EXPECT_THROW((void)e.start_flow(r, 10.0, 0.0), PreconditionError);
}

TEST(FlowEngine, ActiveFlowCountTracksLifecycle) {
    FlowEngine e;
    const ResourceId r = e.add_resource(10.0_MBps);
    EXPECT_EQ(e.active_flow_count(), 0u);
    e.start_flow(r, 10.0, 1e9);
    e.start_flow(r, 20.0, 1e9);
    EXPECT_EQ(e.active_flow_count(), 2u);
    (void)e.advance();
    EXPECT_EQ(e.active_flow_count(), 1u);
}

namespace {

/// Run a small contended scenario with a mid-run throttle and record the
/// exact (time, completed ids) trace.
std::vector<std::pair<double, std::vector<FlowId>>> trace_scenario(FlowEngine& e) {
    const ResourceId a = e.add_resource(100.0_MBps);
    const ResourceId b = e.add_resource(50.0_MBps);
    e.start_flow(a, 120.0, 40.0);
    e.start_flow(a, 120.0, 1e9);
    e.start_flow(a, 60.0, 25.0);
    e.start_flow(b, 200.0, 1e9);
    e.schedule_capacity_change(a, Seconds{1.0}, 60.0_MBps);
    e.schedule_capacity_change(a, Seconds{2.5}, 100.0_MBps);
    std::vector<std::pair<double, std::vector<FlowId>>> trace;
    while (true) {
        const auto& done = e.advance();
        if (done.empty()) break;
        trace.emplace_back(e.now().value(), done);
    }
    return trace;
}

}  // namespace

TEST(FlowEngine, ResetReproducesFreshEngineBitForBit) {
    // Reference trace on a fresh engine.
    FlowEngine fresh;
    const auto expected = trace_scenario(fresh);
    ASSERT_FALSE(expected.empty());

    // A reused engine: run a *different* workload first (to dirty every
    // internal buffer), reset, then replay the scenario. The trace must
    // match exactly — same times (bitwise), same completion order.
    FlowEngine reused;
    const ResourceId r = reused.add_resource(15.0_MBps);
    reused.start_flow(r, 5.0, 1e9);
    reused.start_flow(r, 25.0, 4.0);
    reused.schedule_capacity_change(r, Seconds{0.5}, 7.0_MBps);
    while (!reused.advance().empty()) {
    }
    reused.reset();
    EXPECT_EQ(reused.now().value(), 0.0);
    EXPECT_EQ(reused.resource_count(), 0u);
    EXPECT_EQ(reused.applied_capacity_events(), 0u);

    const auto replay = trace_scenario(reused);
    ASSERT_EQ(replay.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(replay[i].first, expected[i].first) << "step " << i;
        EXPECT_EQ(replay[i].second, expected[i].second) << "step " << i;
    }
}

TEST(FlowEngine, CapacityEventTimeTiesApplyInInsertionOrder) {
    // Two events scheduled for the same instant on the same resource: the
    // later-inserted one must win (insertion order breaks time ties), so a
    // throttle scheduled after a restore at t=1 leaves the resource
    // throttled.
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    e.start_flow(r, 300.0, 1e9);
    e.schedule_capacity_change(r, Seconds{1.0}, 80.0_MBps);
    e.schedule_capacity_change(r, Seconds{1.0}, 20.0_MBps);
    (void)e.advance();
    EXPECT_EQ(e.resource_capacity(r), 20.0);
    EXPECT_EQ(e.applied_capacity_events(), 2u);
}

TEST(FlowEngine, AdvanceBufferIsReusedAcrossCalls) {
    FlowEngine e;
    const ResourceId r = e.add_resource(10.0_MBps);
    e.start_flow(r, 10.0, 1e9);
    e.start_flow(r, 30.0, 1e9);
    const auto& first = e.advance();
    ASSERT_EQ(first.size(), 1u);
    const FlowId first_done = first.front();
    // The next advance overwrites the same buffer (by reference).
    const auto& second = e.advance();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_NE(second.front(), first_done);
    EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace cast::sim
