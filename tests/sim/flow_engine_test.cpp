#include "sim/flow_engine.hpp"

#include <gtest/gtest.h>

namespace cast::sim {
namespace {

using cast::literals::operator""_MBps;

TEST(FlowEngine, SingleFlowRunsAtCap) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId f = e.start_flow(r, 50.0, 10.0);  // capped below the pool
    EXPECT_DOUBLE_EQ(e.flow_rate(f), 10.0);
    const auto done = e.advance();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], f);
    EXPECT_DOUBLE_EQ(e.now().value(), 5.0);  // 50 MB / 10 MB/s
    EXPECT_TRUE(e.flow_done(f));
}

TEST(FlowEngine, SingleFlowLimitedByPool) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    e.start_flow(r, 200.0, 1e9);
    (void)e.advance();
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);  // 200 MB / 100 MB/s
}

TEST(FlowEngine, EqualFlowsShareEqually) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId a = e.start_flow(r, 100.0, 1e9);
    const FlowId b = e.start_flow(r, 100.0, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(a), 50.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(b), 50.0);
    const auto done = e.advance();
    EXPECT_EQ(done.size(), 2u);  // both finish together
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);
}

TEST(FlowEngine, WaterFillingRedistributesCappedSurplus) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId slow = e.start_flow(r, 1000.0, 10.0);  // cap 10
    const FlowId fast = e.start_flow(r, 1000.0, 1e9);
    // Equal share would be 50/50; the capped flow frees 40 for the other.
    EXPECT_DOUBLE_EQ(e.flow_rate(slow), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(fast), 90.0);
}

TEST(FlowEngine, WaterFillingThreeTiersOfCaps) {
    FlowEngine e;
    const ResourceId r = e.add_resource(90.0_MBps);
    const FlowId f1 = e.start_flow(r, 1e6, 10.0);
    const FlowId f2 = e.start_flow(r, 1e6, 25.0);
    const FlowId f3 = e.start_flow(r, 1e6, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(f1), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(f2), 25.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(f3), 55.0);
}

TEST(FlowEngine, DepartureSpeedsUpRemaining) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    e.start_flow(r, 50.0, 1e9);             // finishes first (1 s at 50)
    const FlowId big = e.start_flow(r, 150.0, 1e9);
    (void)e.advance();                      // t = 1.0: small done, big has 100 left
    EXPECT_DOUBLE_EQ(e.now().value(), 1.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(big), 100.0);  // now alone
    (void)e.advance();
    EXPECT_DOUBLE_EQ(e.now().value(), 2.0);  // 100 MB at 100 MB/s
}

TEST(FlowEngine, IndependentResourcesDoNotInterfere) {
    FlowEngine e;
    const ResourceId r1 = e.add_resource(10.0_MBps);
    const ResourceId r2 = e.add_resource(1000.0_MBps);
    const FlowId a = e.start_flow(r1, 100.0, 1e9);
    const FlowId b = e.start_flow(r2, 100.0, 1e9);
    EXPECT_DOUBLE_EQ(e.flow_rate(a), 10.0);
    EXPECT_DOUBLE_EQ(e.flow_rate(b), 1000.0);
}

TEST(FlowEngine, ZeroDemandFlowCompletesWithoutTimeAdvance) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    const FlowId f = e.start_flow(r, 0.0, 1.0);
    const auto done = e.advance();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], f);
    EXPECT_DOUBLE_EQ(e.now().value(), 0.0);
}

TEST(FlowEngine, AdvanceWithNoFlowsReturnsEmpty) {
    FlowEngine e;
    (void)e.add_resource(10.0_MBps);
    EXPECT_TRUE(e.advance().empty());
}

TEST(FlowEngine, ConservationOfWork) {
    // Total bytes delivered per unit time never exceeds resource capacity:
    // with three competing flows of distinct sizes, completion times must
    // be consistent with integral capacity use.
    FlowEngine e;
    const ResourceId r = e.add_resource(30.0_MBps);
    e.start_flow(r, 30.0, 1e9);
    e.start_flow(r, 60.0, 1e9);
    e.start_flow(r, 90.0, 1e9);
    double last = 0.0;
    std::size_t completed = 0;
    while (true) {
        const auto done = e.advance();
        if (done.empty()) break;
        completed += done.size();
        last = e.now().value();
    }
    EXPECT_EQ(completed, 3u);
    // 180 MB total through 30 MB/s = exactly 6 s regardless of sharing.
    EXPECT_NEAR(last, 6.0, 1e-9);
}

TEST(FlowEngine, InvalidInputsRejected) {
    FlowEngine e;
    EXPECT_THROW((void)e.add_resource(0.0_MBps), PreconditionError);
    const ResourceId r = e.add_resource(10.0_MBps);
    EXPECT_THROW((void)e.start_flow(r + 1, 10.0, 1.0), PreconditionError);
    EXPECT_THROW((void)e.start_flow(r, -1.0, 1.0), PreconditionError);
    EXPECT_THROW((void)e.start_flow(r, 10.0, 0.0), PreconditionError);
}

TEST(FlowEngine, ActiveFlowCountTracksLifecycle) {
    FlowEngine e;
    const ResourceId r = e.add_resource(10.0_MBps);
    EXPECT_EQ(e.active_flow_count(), 0u);
    e.start_flow(r, 10.0, 1e9);
    e.start_flow(r, 20.0, 1e9);
    EXPECT_EQ(e.active_flow_count(), 2u);
    (void)e.advance();
    EXPECT_EQ(e.active_flow_count(), 1u);
}

}  // namespace
}  // namespace cast::sim
