// BatchRunner determinism contract: outcomes are written by configuration
// index and every random stream derives from per-config seeds, so a batch
// is bit-identical (exact double equality, fault stats included) no matter
// how many workers run it or whether the per-thread scratch is reused.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "workload/job.hpp"

namespace cast::sim {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec make_job(int id, AppKind app, double input_gb) {
    const int maps = std::max(1, static_cast<int>(input_gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "batch-job-" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{input_gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

/// 50 mixed configurations: apps x tiers x seeds, a few with faults.
std::vector<BatchConfig> mixed_configs(bool with_faults) {
    const std::vector<std::pair<AppKind, double>> jobs = {
        {AppKind::kSort, 4.0}, {AppKind::kGrep, 6.0}, {AppKind::kKMeans, 2.0}};
    const std::vector<StorageTier> tiers = {StorageTier::kPersistentSsd,
                                            StorageTier::kPersistentHdd,
                                            StorageTier::kEphemeralSsd,
                                            StorageTier::kObjectStore};
    std::vector<BatchConfig> configs;
    int id = 1;
    while (configs.size() < 50) {
        for (const auto& [app, gb] : jobs) {
            for (StorageTier tier : tiers) {
                if (configs.size() >= 50) break;
                TierCapacities caps;
                if (tier == StorageTier::kObjectStore) {
                    caps.set(StorageTier::kPersistentSsd, GigaBytes{200.0});
                } else {
                    caps.set(tier, GigaBytes{200.0 + 50.0 * (id % 3)});
                }
                SimOptions options{.seed = 42 + static_cast<std::uint64_t>(id),
                                   .jitter_sigma = 0.06};
                if (with_faults) {
                    options.faults = FaultProfile::scaled(0.6, 7 + id);
                }
                configs.push_back(BatchConfig{JobPlacement::on_tier(make_job(id, app, gb), tier),
                                              caps, options});
                ++id;
            }
        }
    }
    return configs;
}

void expect_bit_identical(const std::vector<BatchOutcome>& a,
                          const std::vector<BatchOutcome>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        ASSERT_EQ(a[i].failed, b[i].failed);
        EXPECT_EQ(a[i].error, b[i].error);
        // Exact equality on purpose: the contract is bit-identity, not
        // tolerance.
        EXPECT_EQ(a[i].result.makespan.value(), b[i].result.makespan.value());
        EXPECT_EQ(a[i].result.phases.stage_in.value(), b[i].result.phases.stage_in.value());
        EXPECT_EQ(a[i].result.phases.map.value(), b[i].result.phases.map.value());
        EXPECT_EQ(a[i].result.phases.shuffle.value(), b[i].result.phases.shuffle.value());
        EXPECT_EQ(a[i].result.phases.reduce.value(), b[i].result.phases.reduce.value());
        EXPECT_EQ(a[i].result.phases.stage_out.value(),
                  b[i].result.phases.stage_out.value());
        EXPECT_EQ(a[i].result.faults, b[i].result.faults);
    }
}

TEST(BatchRunner, FiftyConfigBatchBitIdenticalAcross1And2And8Workers) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const BatchRunner runner(cluster, catalog);
    const std::vector<BatchConfig> configs = mixed_configs(/*with_faults=*/false);
    ASSERT_EQ(configs.size(), 50U);

    const auto serial = runner.run(configs);
    ThreadPool two(2);
    ThreadPool eight(8);
    expect_bit_identical(serial, runner.run(configs, &two));
    expect_bit_identical(serial, runner.run(configs, &eight));
}

TEST(BatchRunner, FaultProfileBatchBitIdenticalAcrossWorkerCounts) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const BatchRunner runner(cluster, catalog);
    const std::vector<BatchConfig> configs = mixed_configs(/*with_faults=*/true);

    const auto serial = runner.run(configs);
    // The scaled profile must actually perturb some runs, or this test
    // proves nothing about fault-stat determinism.
    bool any_faults = false;
    for (const auto& o : serial) any_faults = any_faults || o.result.faults.any();
    EXPECT_TRUE(any_faults);

    ThreadPool two(2);
    ThreadPool eight(8);
    expect_bit_identical(serial, runner.run(configs, &two));
    expect_bit_identical(serial, runner.run(configs, &eight));
}

TEST(BatchRunner, ScratchReuseOnOffIsBitIdentical) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const BatchRunner runner(cluster, catalog);
    const std::vector<BatchConfig> configs = mixed_configs(/*with_faults=*/true);

    ASSERT_TRUE(scratch_reuse_enabled());
    const auto reused = runner.run(configs);
    set_scratch_reuse(false);
    const auto fresh = runner.run(configs);
    set_scratch_reuse(true);
    expect_bit_identical(reused, fresh);
}

TEST(BatchRunner, SimulationErrorIsCapturedPerConfigWithoutAbortingBatch) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const BatchRunner runner(cluster, catalog);

    // Config 1 is set up to die: near-certain task kills with a one-attempt
    // budget exhaust immediately. Configs 0 and 2 are fault-free.
    std::vector<BatchConfig> configs;
    for (int i = 0; i < 3; ++i) {
        TierCapacities caps;
        caps.set(StorageTier::kPersistentSsd, GigaBytes{200.0});
        SimOptions options{.seed = 42, .jitter_sigma = 0.06};
        if (i == 1) {
            options.faults.seed = 99;
            options.faults.task_kill_prob = 0.99;
            options.faults.task_max_attempts = 1;
        }
        configs.push_back(BatchConfig{
            JobPlacement::on_tier(make_job(i + 1, AppKind::kSort, 4.0),
                                  StorageTier::kPersistentSsd),
            caps, options});
    }

    const auto outcomes = runner.run(configs);
    ASSERT_EQ(outcomes.size(), 3U);
    EXPECT_FALSE(outcomes[0].failed);
    EXPECT_TRUE(outcomes[1].failed);
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_FALSE(outcomes[2].failed);
    // The healthy configs are unperturbed by their failed neighbour.
    EXPECT_GT(outcomes[0].result.makespan.value(), 0.0);
    EXPECT_GT(outcomes[2].result.makespan.value(), 0.0);
}

TEST(BatchRunner, NullAndOneWorkerPoolMatch) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const BatchRunner runner(cluster, catalog);
    std::vector<BatchConfig> configs;
    for (int i = 0; i < 4; ++i) {
        TierCapacities caps;
        caps.set(StorageTier::kPersistentSsd, GigaBytes{150.0});
        configs.push_back(BatchConfig{
            JobPlacement::on_tier(make_job(i + 1, AppKind::kGrep, 3.0),
                                  StorageTier::kPersistentSsd),
            caps, SimOptions{.seed = 5, .jitter_sigma = 0.06}});
    }
    ThreadPool one(1);
    expect_bit_identical(runner.run(configs), runner.run(configs, &one));
}

}  // namespace
}  // namespace cast::sim
