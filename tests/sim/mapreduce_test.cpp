#include "sim/mapreduce.hpp"

#include <gtest/gtest.h>

namespace cast::sim {
namespace {

using cloud::StorageTier;
using workload::AppKind;
using cast::literals::operator""_GB;

workload::JobSpec make_job(AppKind app, double input_gb, int maps, int reduces) {
    return workload::JobSpec{.id = 1,
                             .name = "test",
                             .app = app,
                             .input = GigaBytes{input_gb},
                             .map_tasks = maps,
                             .reduce_tasks = reduces,
                             .reuse_group = std::nullopt};
}

TierCapacities standard_caps() {
    TierCapacities caps;
    caps.set(StorageTier::kEphemeralSsd, 375.0_GB);
    caps.set(StorageTier::kPersistentSsd, 500.0_GB);
    caps.set(StorageTier::kPersistentHdd, 500.0_GB);
    return caps;
}

ClusterSim make_sim(int vms = 1, TierCapacities caps = standard_caps(),
                    double jitter = 0.0) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = vms;
    return ClusterSim(cluster, cloud::StorageCatalog::google_cloud(), caps,
                      SimOptions{.seed = 5, .jitter_sigma = jitter});
}

TEST(JobPlacement, OnTierConventions) {
    const auto job = make_job(AppKind::kSort, 10.0, 80, 20);
    const auto eph = JobPlacement::on_tier(job, StorageTier::kEphemeralSsd);
    EXPECT_TRUE(eph.stage_in);
    EXPECT_TRUE(eph.stage_out);
    EXPECT_EQ(eph.intermediate_tier, StorageTier::kEphemeralSsd);

    const auto obj = JobPlacement::on_tier(job, StorageTier::kObjectStore);
    EXPECT_FALSE(obj.stage_in);
    EXPECT_EQ(obj.intermediate_tier, StorageTier::kPersistentSsd);

    const auto pers = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    EXPECT_FALSE(pers.stage_in);
    EXPECT_FALSE(pers.stage_out);
}

TEST(JobPlacement, ValidationRejectsBadSplits) {
    const auto job = make_job(AppKind::kSort, 10.0, 80, 20);
    JobPlacement p = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    p.input_splits = {{StorageTier::kPersistentSsd, 0.5},
                      {StorageTier::kEphemeralSsd, 0.2}};  // sums to 0.7
    EXPECT_THROW(p.validate(), PreconditionError);
    p.input_splits.clear();
    EXPECT_THROW(p.validate(), PreconditionError);
    p = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    p.intermediate_tier = StorageTier::kObjectStore;
    EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(ClusterSim, RunsOnUnprovisionedTierRejected) {
    TierCapacities caps;  // nothing attached
    auto sim = make_sim(1, caps);
    const auto job = make_job(AppKind::kGrep, 1.0, 8, 2);
    EXPECT_THROW((void)sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)),
                 PreconditionError);
}

TEST(ClusterSim, ObjectStoreAlwaysReachable) {
    TierCapacities caps;
    caps.set(StorageTier::kPersistentSsd, 100.0_GB);  // for intermediates
    auto sim = make_sim(1, caps);
    const auto job = make_job(AppKind::kGrep, 1.0, 8, 2);
    EXPECT_NO_THROW((void)sim.run_job(JobPlacement::on_tier(job, StorageTier::kObjectStore)));
}

TEST(ClusterSim, MakespanEqualsPhaseSum) {
    auto sim = make_sim();
    const auto job = make_job(AppKind::kSort, 4.0, 32, 8);
    const auto r = sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd));
    EXPECT_NEAR(r.makespan.value(), r.phases.total().value(), 1e-6);
    EXPECT_GT(r.phases.map.value(), 0.0);
    EXPECT_GT(r.phases.shuffle.value(), 0.0);
    EXPECT_GT(r.phases.reduce.value(), 0.0);
    EXPECT_DOUBLE_EQ(r.phases.stage_in.value(), 0.0);
}

TEST(ClusterSim, EphemeralPlacementPaysStaging) {
    auto sim = make_sim();
    const auto job = make_job(AppKind::kSort, 4.0, 32, 8);
    const auto r = sim.run_job(JobPlacement::on_tier(job, StorageTier::kEphemeralSsd));
    EXPECT_GT(r.phases.stage_in.value(), 0.0);
    EXPECT_GT(r.phases.stage_out.value(), 0.0);
    // Download of 4 GB through the 265 MB/s objStore allocation on 1 VM.
    EXPECT_NEAR(r.phases.stage_in.value(), 4000.0 / 265.0, 1.0);
}

TEST(ClusterSim, FasterTierIsFasterForIoBoundJob) {
    auto sim = make_sim();
    const auto job = make_job(AppKind::kGrep, 6.0, 48, 4);
    const auto eph =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kEphemeralSsd)).phases;
    const auto ssd =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).phases;
    const auto hdd =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentHdd)).phases;
    // Processing (excluding staging) ordering follows tier bandwidth.
    EXPECT_LT(eph.processing().value(), ssd.processing().value());
    EXPECT_LT(ssd.processing().value(), hdd.processing().value());
}

TEST(ClusterSim, CpuBoundJobInsensitiveToTier) {
    auto sim = make_sim();
    const auto job = make_job(AppKind::kKMeans, 4.0, 32, 8);
    const double ssd =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    const double hdd =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentHdd)).makespan.value();
    EXPECT_NEAR(ssd / hdd, 1.0, 0.05);  // Fig. 1d: similar performance
}

TEST(ClusterSim, IterativeAppCostsScaleWithIterations) {
    auto sim = make_sim();
    const auto kmeans = make_job(AppKind::kKMeans, 2.0, 16, 4);
    const auto grep = make_job(AppKind::kGrep, 2.0, 16, 4);
    const double t_kmeans =
        sim.run_job(JobPlacement::on_tier(kmeans, StorageTier::kPersistentSsd))
            .makespan.value();
    const double t_grep =
        sim.run_job(JobPlacement::on_tier(grep, StorageTier::kPersistentSsd))
            .makespan.value();
    // KMeans re-reads its input every iteration at a low compute rate; it
    // must be several times slower than a single sequential scan.
    EXPECT_GT(t_kmeans, 3.0 * t_grep);
}

TEST(ClusterSim, MoreVmsShortenJob) {
    const auto job = make_job(AppKind::kGrep, 12.0, 96, 8);
    auto sim1 = make_sim(1);
    auto sim4 = make_sim(4);
    const double t1 =
        sim1.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    const double t4 =
        sim4.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    EXPECT_LT(t4, t1 / 2.5);  // near-linear scaling for an I/O-bound scan
}

TEST(ClusterSim, CapacityScalingSpeedsUpPersistentSsd) {
    const auto job = make_job(AppKind::kGrep, 6.0, 48, 4);
    TierCapacities small = standard_caps();
    small.set(StorageTier::kPersistentSsd, 100.0_GB);
    TierCapacities large = standard_caps();
    large.set(StorageTier::kPersistentSsd, 500.0_GB);
    const double t_small =
        make_sim(1, small)
            .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
            .makespan.value();
    const double t_large =
        make_sim(1, large)
            .run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
            .makespan.value();
    // 48 vs 234 MB/s: expect roughly the bandwidth ratio for an I/O-bound
    // job (Fig. 2's mechanism).
    EXPECT_GT(t_small / t_large, 3.0);
}

TEST(ClusterSim, MixedPlacementTracksSlowTier) {
    // Fig. 5a: 50% ephSSD + 50% persHDD is no better than persHDD alone.
    const auto job = make_job(AppKind::kGrep, 6.0, 48, 4);
    auto sim = make_sim(1);
    JobPlacement mixed = JobPlacement::on_tier(job, StorageTier::kEphemeralSsd);
    mixed.stage_in = false;
    mixed.stage_out = false;
    mixed.input_splits = {{StorageTier::kEphemeralSsd, 0.5},
                          {StorageTier::kPersistentHdd, 0.5}};
    const double t_mixed = sim.run_job(mixed).makespan.value();

    JobPlacement hdd_only = mixed;
    hdd_only.input_splits = {{StorageTier::kPersistentHdd, 1.0}};
    const double t_hdd = sim.run_job(hdd_only).makespan.value();

    JobPlacement eph_only = mixed;
    eph_only.input_splits = {{StorageTier::kEphemeralSsd, 1.0}};
    const double t_eph = sim.run_job(eph_only).makespan.value();

    EXPECT_LT(t_eph, 0.5 * t_hdd);          // the tiers really differ
    EXPECT_GT(t_mixed, 0.8 * t_hdd * 0.5);  // mixed pays at least the slow half
    // The slow half's tasks run at per-stream-cap speed regardless of how
    // few they are, so mixed lands near the HDD-only time scaled by the
    // slow fraction of waves — far from the eph-only time.
    EXPECT_GT(t_mixed, 2.0 * t_eph);
}

TEST(ClusterSim, NinetyPercentFastStillSlow) {
    // Fig. 5b: even 90% on ephSSD does not rescue the job.
    const auto job = make_job(AppKind::kGrep, 6.0, 48, 4);
    auto sim = make_sim(1);
    JobPlacement mixed = JobPlacement::on_tier(job, StorageTier::kEphemeralSsd);
    mixed.stage_in = false;
    mixed.stage_out = false;
    mixed.input_splits = {{StorageTier::kEphemeralSsd, 0.9},
                          {StorageTier::kPersistentHdd, 0.1}};
    const double t_mixed = sim.run_job(mixed).makespan.value();
    JobPlacement eph_only = mixed;
    eph_only.input_splits = {{StorageTier::kEphemeralSsd, 1.0}};
    const double t_eph = sim.run_job(eph_only).makespan.value();
    EXPECT_GT(t_mixed, 1.5 * t_eph);
}

TEST(ClusterSim, JoinOnObjectStorePaysRequestOverheads) {
    const auto job = make_job(AppKind::kJoin, 6.0, 48, 12);
    TierCapacities caps = standard_caps();
    auto sim = make_sim(1, caps);
    const double t_obj =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kObjectStore)).makespan.value();
    const double t_ssd =
        sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    EXPECT_GT(t_obj, 1.3 * t_ssd);  // Fig. 1b: objStore clearly worse for Join
}

TEST(ClusterSim, DeterministicForSeed) {
    const auto job = make_job(AppKind::kSort, 4.0, 32, 8);
    auto a = make_sim(2, standard_caps(), 0.06);
    auto b = make_sim(2, standard_caps(), 0.06);
    EXPECT_DOUBLE_EQ(
        a.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value(),
        b.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value());
}

TEST(ClusterSim, JitterPerturbsButBounded) {
    const auto job = make_job(AppKind::kSort, 4.0, 32, 8);
    auto det = make_sim(1, standard_caps(), 0.0);
    auto jit = make_sim(1, standard_caps(), 0.06);
    const double t0 =
        det.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    const double t1 =
        jit.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd)).makespan.value();
    EXPECT_NE(t0, t1);
    EXPECT_NEAR(t1 / t0, 1.0, 0.25);
}

TEST(ClusterSim, RunSerialPreservesOrderAndCount) {
    auto sim = make_sim();
    std::vector<JobPlacement> ps;
    for (int i = 0; i < 3; ++i) {
        auto job = make_job(AppKind::kGrep, 1.0 + i, 8 * (i + 1), 2);
        job.id = i + 1;
        ps.push_back(JobPlacement::on_tier(job, StorageTier::kPersistentSsd));
    }
    const auto results = sim.run_serial(ps);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_LT(results[0].makespan.value(), results[2].makespan.value());
}

TEST(ClusterSim, TransferTimeMatchesSlowerEndpoint) {
    auto sim = make_sim(1);
    // persSSD(500) read 234 vs persHDD(500) write 97: HDD limits.
    const Seconds t = sim.run_transfer(10.0_GB, StorageTier::kPersistentSsd,
                                       StorageTier::kPersistentHdd);
    EXPECT_NEAR(t.value(), 10000.0 / 97.0, 1.0);
    EXPECT_DOUBLE_EQ(
        sim.run_transfer(10.0_GB, StorageTier::kPersistentSsd, StorageTier::kPersistentSsd)
            .value(),
        0.0);
    EXPECT_DOUBLE_EQ(
        sim.run_transfer(GigaBytes{0.0}, StorageTier::kPersistentSsd,
                         StorageTier::kPersistentHdd)
            .value(),
        0.0);
}

TEST(ClusterSim, TransferScalesWithVmCount) {
    auto sim1 = make_sim(1);
    auto sim5 = make_sim(5);
    const double t1 = sim1.run_transfer(10.0_GB, StorageTier::kPersistentSsd,
                                        StorageTier::kPersistentHdd)
                          .value();
    const double t5 = sim5.run_transfer(10.0_GB, StorageTier::kPersistentSsd,
                                        StorageTier::kPersistentHdd)
                          .value();
    EXPECT_NEAR(t1 / t5, 5.0, 1e-6);
}

TEST(ClusterSim, TierBandwidthReflectsProvisioning) {
    auto sim = make_sim();
    EXPECT_NEAR(sim.tier_bandwidth_per_vm(StorageTier::kPersistentSsd).value(), 234.0, 1e-6);
    EXPECT_NEAR(sim.tier_bandwidth_per_vm(StorageTier::kEphemeralSsd).value(), 733.0, 1e-6);
    EXPECT_NEAR(sim.tier_bandwidth_per_vm(StorageTier::kObjectStore).value(), 265.0, 1e-6);
}

TEST(ClusterSim, ProvisioningRoundsEphemeralVolumes) {
    TierCapacities caps;
    caps.set(StorageTier::kEphemeralSsd, 400.0_GB);  // rounds to 2 volumes
    auto sim = make_sim(1, caps);
    EXPECT_NEAR(sim.capacities().of(StorageTier::kEphemeralSsd).value(), 750.0, 1e-9);
    EXPECT_NEAR(sim.tier_bandwidth_per_vm(StorageTier::kEphemeralSsd).value(), 2 * 733.0,
                1e-6);
}

}  // namespace
}  // namespace cast::sim
