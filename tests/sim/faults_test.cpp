#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "sim/mapreduce.hpp"
#include "sim/phase_runner.hpp"

namespace cast::sim {
namespace {

using cloud::StorageTier;
using workload::AppKind;
using cast::literals::operator""_GB;
using cast::literals::operator""_MBps;

// ---------------------------------------------------------------------------
// FaultProfile / RetryPolicy
// ---------------------------------------------------------------------------

TEST(FaultProfile, DefaultProfileInjectsNothing) {
    const FaultProfile p;
    EXPECT_FALSE(p.enabled());
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(FaultProfile::none().enabled());
}

TEST(FaultProfile, EnabledDetectsEachKnob) {
    FaultProfile p;
    p.object_store_error_rate = 0.01;
    EXPECT_TRUE(p.enabled());

    p = {};
    p.task_kill_prob = 0.01;
    EXPECT_TRUE(p.enabled());

    // A straggler with factor 1 is indistinguishable from no straggler.
    p = {};
    p.straggler_prob = 0.5;
    EXPECT_FALSE(p.enabled());
    p.straggler_factor = 2.0;
    EXPECT_TRUE(p.enabled());

    p = {};
    p.episodes.push_back(
        ThrottleEpisode{StorageTier::kPersistentSsd, Seconds{0.0}, Seconds{10.0}, 0.5});
    EXPECT_TRUE(p.enabled());
}

TEST(FaultProfile, ValidationRejectsBadValues) {
    FaultProfile p;
    p.object_store_error_rate = 1.0;  // certain failure would loop forever
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.task_kill_prob = -0.1;
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.straggler_factor = 0.5;  // stragglers cannot speed tasks up
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.task_max_attempts = 0;
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.retry.backoff_multiplier = 0.5;
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.retry.backoff_jitter = 1.0;
    EXPECT_THROW(p.validate(), PreconditionError);

    p = {};
    p.episodes.push_back(
        ThrottleEpisode{StorageTier::kPersistentSsd, Seconds{0.0}, Seconds{10.0}, 0.0});
    EXPECT_THROW(p.validate(), PreconditionError);

    p.episodes.back() = ThrottleEpisode{StorageTier::kPersistentSsd, Seconds{-1.0},
                                        Seconds{10.0}, 0.5};
    EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(RetryPolicy, WaitGrowsExponentiallyWithJitterBounds) {
    RetryPolicy r;  // base 0.5 s, x2, +-25%
    EXPECT_DOUBLE_EQ(r.wait(0, 0.5).value(), 0.5);
    EXPECT_DOUBLE_EQ(r.wait(1, 0.5).value(), 1.0);
    EXPECT_DOUBLE_EQ(r.wait(3, 0.5).value(), 4.0);
    // u = 0 is the most negative jitter, u -> 1 the most positive.
    EXPECT_DOUBLE_EQ(r.wait(0, 0.0).value(), 0.5 * 0.75);
    EXPECT_LT(r.wait(0, 0.999).value(), 0.5 * 1.25 + 1e-9);
}

TEST(FaultProfile, ScaledZeroIntensityIsFaultFree) {
    const FaultProfile p = FaultProfile::scaled(0.0, 7);
    EXPECT_FALSE(p.enabled());
    EXPECT_TRUE(p.episodes.empty());
}

TEST(FaultProfile, ScaledProfileDeterministicAndValid) {
    const Seconds horizon = Seconds::from_hours(1.0);
    const FaultProfile a = FaultProfile::scaled(0.8, 7, horizon);
    const FaultProfile b = FaultProfile::scaled(0.8, 7, horizon);
    EXPECT_TRUE(a.enabled());
    EXPECT_NO_THROW(a.validate());
    ASSERT_EQ(a.episodes.size(), b.episodes.size());
    ASSERT_FALSE(a.episodes.empty());
    for (std::size_t i = 0; i < a.episodes.size(); ++i) {
        EXPECT_EQ(a.episodes[i].tier, b.episodes[i].tier);
        EXPECT_DOUBLE_EQ(a.episodes[i].start.value(), b.episodes[i].start.value());
        EXPECT_DOUBLE_EQ(a.episodes[i].duration.value(), b.episodes[i].duration.value());
        EXPECT_DOUBLE_EQ(a.episodes[i].rate_factor, b.episodes[i].rate_factor);
        EXPECT_LT(a.episodes[i].start.value(), horizon.value());
    }
    // Incidents hit every tier, not just the object store.
    bool seen[cloud::kTierCount] = {};
    for (const auto& e : a.episodes) seen[cloud::tier_index(e.tier)] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

// ---------------------------------------------------------------------------
// FlowEngine capacity events (the throttling substrate)
// ---------------------------------------------------------------------------

TEST(FlowEngineEvents, CapacityCutSlowsCompletion) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    (void)e.start_flow(r, 100.0, 1e9);
    // Halve the capacity halfway through: 50 MB drain in the first 0.5 s,
    // the remaining 50 MB at 50 MB/s -> completes at 1.5 s.
    e.schedule_capacity_change(r, Seconds{0.5}, 50.0_MBps);
    const auto done = e.advance();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_NEAR(e.now().value(), 1.5, 1e-9);
    EXPECT_EQ(e.applied_capacity_events(), 1u);
    EXPECT_DOUBLE_EQ(e.resource_capacity(r), 50.0);
}

TEST(FlowEngineEvents, CapacityRestoredAfterEpisode) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    (void)e.start_flow(r, 100.0, 1e9);
    // Cut to 50 during [0.25, 0.75): 25 MB + 25 MB done by 0.75 s, the
    // remaining 50 MB at the restored 100 MB/s -> completes at 1.25 s.
    e.schedule_capacity_change(r, Seconds{0.25}, 50.0_MBps);
    e.schedule_capacity_change(r, Seconds{0.75}, 100.0_MBps);
    (void)e.advance();
    EXPECT_NEAR(e.now().value(), 1.25, 1e-9);
    EXPECT_EQ(e.applied_capacity_events(), 2u);
    EXPECT_DOUBLE_EQ(e.resource_capacity(r), 100.0);
}

TEST(FlowEngineEvents, EventAfterLastCompletionNeverFires) {
    FlowEngine e;
    const ResourceId r = e.add_resource(100.0_MBps);
    (void)e.start_flow(r, 100.0, 1e9);
    e.schedule_capacity_change(r, Seconds{10.0}, 1.0_MBps);
    (void)e.advance();
    EXPECT_NEAR(e.now().value(), 1.0, 1e-9);
    EXPECT_EQ(e.applied_capacity_events(), 0u);
    EXPECT_DOUBLE_EQ(e.resource_capacity(r), 100.0);
}

// ---------------------------------------------------------------------------
// run_phase with a scripted fault model
// ---------------------------------------------------------------------------

class ScriptedFaults final : public TaskFaultModel {
public:
    using Fn = std::function<AttemptFaults(std::size_t, int)>;
    ScriptedFaults(int max_attempts, Fn fn) : max_(max_attempts), fn_(std::move(fn)) {}
    AttemptFaults on_attempt(std::size_t task, int attempt) override {
        return fn_(task, attempt);
    }
    [[nodiscard]] int max_attempts() const override { return max_; }

private:
    int max_;
    Fn fn_;
};

TEST(PhaseRunnerFaults, FailedAttemptReexecutes) {
    FlowEngine e;
    const ResourceId r = e.add_resource(MBytesPerSec{1e12});
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 1.0, 1.0}}}};  // 1 s
    ScriptedFaults faults(4, [](std::size_t, int attempt) {
        AttemptFaults a;
        a.fail = attempt == 0;  // first attempt is wasted work
        return a;
    });
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1, &faults, r).value(), 2.0, 1e-9);
}

TEST(PhaseRunnerFaults, ReexecutionJoinsBackOfQueue) {
    FlowEngine e;
    const ResourceId r = e.add_resource(MBytesPerSec{1e12});
    // One slot, two 1 s tasks; task 0's first attempt fails, so the order
    // is t0 (wasted), t1, t0 again -> 3 s (Hadoop re-execution tail).
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 1.0, 1.0}}},
                                  SimTask{0, {Segment{r, 1.0, 1.0}}}};
    ScriptedFaults faults(4, [](std::size_t task, int attempt) {
        AttemptFaults a;
        a.fail = task == 0 && attempt == 0;
        return a;
    });
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1, &faults, r).value(), 3.0, 1e-9);
}

TEST(PhaseRunnerFaults, ExhaustedAttemptsThrowSimulationError) {
    FlowEngine e;
    const ResourceId r = e.add_resource(MBytesPerSec{1e12});
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 1.0, 1.0}}}};
    ScriptedFaults faults(2, [](std::size_t, int) {
        AttemptFaults a;
        a.fail = true;
        return a;
    });
    try {
        (void)run_phase(e, std::move(tasks), 1, 1, &faults, r);
        FAIL() << "should have thrown";
    } catch (const SimulationError& ex) {
        EXPECT_NE(std::string(ex.what()).find("exhausted"), std::string::npos);
    }
}

TEST(PhaseRunnerFaults, StragglerScalesDemand) {
    FlowEngine e;
    const ResourceId r = e.add_resource(MBytesPerSec{1e12});
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 1.0, 1.0}}}};
    ScriptedFaults faults(4, [](std::size_t, int) {
        AttemptFaults a;
        a.demand_scale = 3.0;
        return a;
    });
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1, &faults, r).value(), 3.0, 1e-9);
}

TEST(PhaseRunnerFaults, RetryDelayChargedBeforeSegments) {
    FlowEngine e;
    const ResourceId delay = e.add_resource(MBytesPerSec{1e12});
    const ResourceId r = e.add_resource(MBytesPerSec{1e12});
    std::vector<SimTask> tasks = {SimTask{0, {Segment{r, 1.0, 1.0}}}};
    ScriptedFaults faults(4, [](std::size_t, int) {
        AttemptFaults a;
        a.delay = Seconds{5.0};
        return a;
    });
    EXPECT_NEAR(run_phase(e, std::move(tasks), 1, 1, &faults, delay).value(), 6.0, 1e-9);
}

// ---------------------------------------------------------------------------
// FaultInjector sampling
// ---------------------------------------------------------------------------

FaultProfile busy_profile() {
    FaultProfile p;
    p.seed = 17;
    p.object_store_error_rate = 0.3;
    p.task_kill_prob = 0.2;
    p.straggler_prob = 0.3;
    p.straggler_factor = 2.5;
    return p;
}

TEST(FaultInjector, DeterministicForSameProfileAndStream) {
    const FaultProfile p = busy_profile();
    FaultInjector a(p, 3);
    FaultInjector b(p, 3);
    a.begin_phase([](std::size_t) { return 4.0; });
    b.begin_phase([](std::size_t) { return 4.0; });
    for (std::size_t t = 0; t < 200; ++t) {
        const AttemptFaults fa = a.on_attempt(t, 0);
        const AttemptFaults fb = b.on_attempt(t, 0);
        EXPECT_DOUBLE_EQ(fa.demand_scale, fb.demand_scale);
        EXPECT_DOUBLE_EQ(fa.delay.value(), fb.delay.value());
        EXPECT_EQ(fa.fail, fb.fail);
    }
    EXPECT_TRUE(a.stats() == b.stats());
    EXPECT_TRUE(a.stats().any());
}

TEST(FaultInjector, IndependentStreamsSampleIndependently) {
    const FaultProfile p = busy_profile();
    FaultInjector a(p, 1);
    FaultInjector b(p, 2);
    a.begin_phase([](std::size_t) { return 4.0; });
    b.begin_phase([](std::size_t) { return 4.0; });
    for (std::size_t t = 0; t < 200; ++t) {
        (void)a.on_attempt(t, 0);
        (void)b.on_attempt(t, 0);
    }
    EXPECT_FALSE(a.stats() == b.stats());
}

TEST(FaultInjector, RequestErrorsRetryWithBackoff) {
    FaultProfile p;
    p.seed = 23;
    p.object_store_error_rate = 0.4;
    FaultInjector inj(p, 0);
    inj.begin_phase([](std::size_t) { return 5.0; });
    for (std::size_t t = 0; t < 100; ++t) (void)inj.on_attempt(t, 0);
    EXPECT_GT(inj.stats().request_retries, 0);
    EXPECT_GT(inj.stats().backoff_delay.value(), 0.0);
    // A phase with no objStore requests must sample no request errors.
    FaultInjector calm(p, 0);
    calm.begin_phase(nullptr);
    for (std::size_t t = 0; t < 100; ++t) (void)calm.on_attempt(t, 0);
    EXPECT_EQ(calm.stats().request_retries, 0);
}

TEST(FaultInjector, ReexecutionsAreCounted) {
    const FaultProfile p = busy_profile();
    FaultInjector inj(p, 0);
    (void)inj.on_attempt(0, 0);
    (void)inj.on_attempt(0, 1);
    (void)inj.on_attempt(0, 2);
    EXPECT_EQ(inj.stats().task_retries, 2);
}

// ---------------------------------------------------------------------------
// ClusterSim integration
// ---------------------------------------------------------------------------

workload::JobSpec sim_job(AppKind app, double gb, int maps, int reduces) {
    return workload::JobSpec{.id = 1,
                             .name = "test",
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = reduces,
                             .reuse_group = std::nullopt};
}

ClusterSim sim_with(SimOptions options, int vms = 1) {
    TierCapacities caps;
    caps.set(StorageTier::kEphemeralSsd, 375.0_GB);
    caps.set(StorageTier::kPersistentSsd, 500.0_GB);
    caps.set(StorageTier::kPersistentHdd, 500.0_GB);
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = vms;
    return ClusterSim(cluster, cloud::StorageCatalog::google_cloud(), caps, options);
}

TEST(ClusterSimFaults, ThrottleEpisodeSlowsJob) {
    const auto job = sim_job(AppKind::kGrep, 6.0, 48, 4);
    const auto placement = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    const double calm =
        sim_with(SimOptions{.seed = 5, .jitter_sigma = 0.0}).run_job(placement).makespan.value();

    SimOptions throttled{.seed = 5, .jitter_sigma = 0.0};
    throttled.faults.episodes.push_back(ThrottleEpisode{
        StorageTier::kPersistentSsd, Seconds{0.0}, Seconds{1e5}, 0.25});
    const JobResult r = sim_with(throttled).run_job(placement);
    EXPECT_GT(r.makespan.value(), 1.5 * calm);
    EXPECT_GE(r.faults.throttle_events, 1);
    EXPECT_TRUE(r.faults.any());
}

TEST(ClusterSimFaults, StragglersExtendMakespanAndAreCounted) {
    const auto job = sim_job(AppKind::kGrep, 6.0, 48, 4);
    const auto placement = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    const double calm =
        sim_with(SimOptions{.seed = 5, .jitter_sigma = 0.0}).run_job(placement).makespan.value();

    SimOptions straggly{.seed = 5, .jitter_sigma = 0.0};
    straggly.faults.seed = 9;
    straggly.faults.straggler_prob = 0.5;
    straggly.faults.straggler_factor = 3.0;
    const JobResult r = sim_with(straggly).run_job(placement);
    EXPECT_GT(r.makespan.value(), calm);
    EXPECT_GT(r.faults.stragglers, 0);
}

TEST(ClusterSimFaults, KillsGrowReexecutionTail) {
    const auto job = sim_job(AppKind::kGrep, 6.0, 48, 4);
    const auto placement = JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    const double calm =
        sim_with(SimOptions{.seed = 5, .jitter_sigma = 0.0}).run_job(placement).makespan.value();

    SimOptions killy{.seed = 5, .jitter_sigma = 0.0};
    killy.faults.seed = 11;
    killy.faults.task_kill_prob = 0.3;
    killy.faults.task_max_attempts = 16;  // keep the job alive
    const JobResult r = sim_with(killy).run_job(placement);
    EXPECT_GT(r.makespan.value(), calm);
    EXPECT_GT(r.faults.task_retries, 0);
}

TEST(ClusterSimFaults, AttemptExhaustionCarriesJobContext) {
    const auto job = sim_job(AppKind::kGrep, 2.0, 16, 4);
    SimOptions doomed{.seed = 5, .jitter_sigma = 0.0};
    doomed.faults.seed = 13;
    doomed.faults.task_kill_prob = 0.97;
    doomed.faults.task_max_attempts = 1;
    try {
        (void)sim_with(doomed).run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd));
        FAIL() << "should have thrown";
    } catch (const SimulationError& e) {
        EXPECT_EQ(e.job(), "test");
        EXPECT_FALSE(e.phase().empty());
        EXPECT_NE(std::string(e.what()).find("test"), std::string::npos);
    }
}

TEST(ClusterSimFaults, InvalidProfileRejectedAtConstruction) {
    SimOptions bad;
    bad.faults.object_store_error_rate = 1.0;
    TierCapacities caps;
    caps.set(StorageTier::kPersistentSsd, 500.0_GB);
    EXPECT_THROW(ClusterSim(cloud::ClusterSpec::paper_single_node(),
                            cloud::StorageCatalog::google_cloud(), caps, bad),
                 PreconditionError);
}

}  // namespace
}  // namespace cast::sim
