#include "common/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace cast {
namespace {

TEST(BoundedPriorityQueue, PopsHighestPriorityFirstFifoWithinLevel) {
    BoundedPriorityQueue<int> q(8, 3);
    ASSERT_TRUE(q.try_push(10, 1));
    ASSERT_TRUE(q.try_push(20, 2));
    ASSERT_TRUE(q.try_push(1, 0));
    ASSERT_TRUE(q.try_push(11, 1));
    ASSERT_TRUE(q.try_push(2, 0));

    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 10);
    EXPECT_EQ(q.pop(), 11);
    EXPECT_EQ(q.pop(), 20);
}

TEST(BoundedPriorityQueue, OutOfRangePriorityClampsToLowestLevel) {
    BoundedPriorityQueue<int> q(4, 2);
    ASSERT_TRUE(q.try_push(99, 57));  // clamped to level 1
    ASSERT_TRUE(q.try_push(1, 0));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 99);
}

TEST(BoundedPriorityQueue, RejectsWhenFullAndAdmitsAfterDrain) {
    BoundedPriorityQueue<int> q(2);
    ASSERT_TRUE(q.try_push(1));
    ASSERT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.try_push(4));
}

TEST(BoundedPriorityQueue, CloseRejectsNewItemsButDrainsAdmittedOnes) {
    BoundedPriorityQueue<int> q(4);
    ASSERT_TRUE(q.try_push(1));
    ASSERT_TRUE(q.try_push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.try_push(3));

    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), std::nullopt);  // closed + drained: no block
}

TEST(BoundedPriorityQueue, PopBatchDrainsUpToMaxHighestFirst) {
    BoundedPriorityQueue<int> q(8, 2);
    for (int v : {10, 11, 12}) ASSERT_TRUE(q.try_push(v, 1));
    for (int v : {1, 2}) ASSERT_TRUE(q.try_push(v, 0));

    std::vector<int> out;
    EXPECT_EQ(q.pop_batch(out, 4), 4u);
    EXPECT_EQ(out, (std::vector<int>{1, 2, 10, 11}));
    EXPECT_EQ(q.pop_batch(out, 4), 1u);
    EXPECT_EQ(out.back(), 12);

    q.close();
    EXPECT_EQ(q.pop_batch(out, 4), 0u);  // closed + drained
}

TEST(BoundedPriorityQueue, MoveOnlyItemsFlowThrough) {
    BoundedPriorityQueue<std::unique_ptr<int>> q(2);
    ASSERT_TRUE(q.try_push(std::make_unique<int>(7)));
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(**item, 7);
}

// Concurrency contract under TSan: many producers race try_push against
// consumers draining with pop_batch; every admitted item comes out exactly
// once and close() releases every blocked consumer.
TEST(BoundedPriorityQueue, ConcurrentProducersAndBatchConsumersLoseNothing) {
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 500;

    BoundedPriorityQueue<int> q(64, 3);
    std::atomic<long long> pushed_sum{0};
    std::atomic<long long> popped_sum{0};
    std::atomic<int> popped_count{0};

    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::vector<int> batch;
            for (;;) {
                batch.clear();
                if (q.pop_batch(batch, 8) == 0) return;
                for (const int v : batch) {
                    popped_sum.fetch_add(v, std::memory_order_relaxed);
                    popped_count.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = p * kPerProducer + i;
                // Spin on rejects: backpressure, not loss.
                while (!q.try_push(value, static_cast<std::size_t>(value % 3))) {
                    std::this_thread::yield();
                }
                pushed_sum.fetch_add(value, std::memory_order_relaxed);
            }
        });
    }

    for (auto& t : producers) t.join();
    q.close();
    for (auto& t : consumers) t.join();

    EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
    EXPECT_EQ(popped_sum.load(), pushed_sum.load());
    EXPECT_EQ(q.size(), 0u);
}

// Shutdown race: close() fires while producers are mid-try_push and
// consumers are mid-pop_batch. The contract under this race is exact —
// every try_push that returned true is drained exactly once, every
// try_push after close returns false, and no thread hangs. Run many short
// rounds so TSan sees lots of distinct interleavings of close vs push/pop.
TEST(BoundedPriorityQueue, CloseRacingPushAndPopBatchLosesNoAdmittedItem) {
    constexpr int kRounds = 25;
    constexpr int kProducers = 3;
    constexpr int kConsumers = 2;
    constexpr int kAttemptsPerProducer = 64;

    for (int round = 0; round < kRounds; ++round) {
        BoundedPriorityQueue<int> q(16, 2);
        std::atomic<long long> admitted_sum{0};
        std::atomic<int> admitted_count{0};
        std::atomic<long long> drained_sum{0};
        std::atomic<int> drained_count{0};

        std::vector<std::thread> consumers;
        consumers.reserve(kConsumers);
        for (int c = 0; c < kConsumers; ++c) {
            consumers.emplace_back([&] {
                std::vector<int> batch;
                for (;;) {
                    batch.clear();
                    if (q.pop_batch(batch, 4) == 0) return;
                    for (const int v : batch) {
                        drained_sum.fetch_add(v, std::memory_order_relaxed);
                        drained_count.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            });
        }

        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (int i = 0; i < kAttemptsPerProducer; ++i) {
                    const int value = p * kAttemptsPerProducer + i + 1;
                    // No retry loop: close() may land at any moment, and a
                    // reject (full OR closed) simply doesn't count as admitted.
                    if (q.try_push(value, static_cast<std::size_t>(value % 2))) {
                        admitted_sum.fetch_add(value, std::memory_order_relaxed);
                        admitted_count.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            });
        }

        // Close somewhere in the middle of the push storm.
        std::thread closer([&] {
            std::this_thread::yield();
            q.close();
        });

        for (auto& t : producers) t.join();
        closer.join();
        for (auto& t : consumers) t.join();

        EXPECT_FALSE(q.try_push(12345)) << "round " << round;
        EXPECT_EQ(drained_count.load(), admitted_count.load()) << "round " << round;
        EXPECT_EQ(drained_sum.load(), admitted_sum.load()) << "round " << round;
        EXPECT_EQ(q.size(), 0u) << "round " << round;
    }
}

// Regression for the annotated wait loop (predicate lambda -> explicit
// `while (...) cv_.wait(lock)` so thread-safety analysis sees the guarded
// reads under the lock): consumers blocked on an EMPTY queue must wake on
// a plain push, not only on close(). A broken loop either misses the wake
// (hang) or re-reads state unlocked (TSan report in the TSan lane).
TEST(BoundedPriorityQueue, BlockedConsumersWakeOnPushNotOnlyOnClose) {
    constexpr int kItems = 200;
    BoundedPriorityQueue<int> q(8, 2);
    std::atomic<long long> drained_sum{0};
    std::atomic<int> drained_count{0};

    std::vector<std::thread> consumers;
    consumers.reserve(3);
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&, c] {
            std::vector<int> batch;
            for (;;) {
                if (c == 0) {
                    // Single-pop path: exercises the pop() wait loop.
                    const auto v = q.pop();
                    if (!v) return;
                    drained_sum.fetch_add(*v, std::memory_order_relaxed);
                    drained_count.fetch_add(1, std::memory_order_relaxed);
                } else {
                    batch.clear();
                    if (q.pop_batch(batch, 4) == 0) return;
                    for (const int v : batch) {
                        drained_sum.fetch_add(v, std::memory_order_relaxed);
                        drained_count.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }
        });
    }

    // Push in dribbles with yields in between so consumers repeatedly drain
    // the queue dry and re-block in the wait loop before the next item.
    long long pushed_sum = 0;
    for (int i = 1; i <= kItems; ++i) {
        while (!q.try_push(i, static_cast<std::size_t>(i % 2))) {
            std::this_thread::yield();
        }
        pushed_sum += i;
        if (i % 7 == 0) std::this_thread::yield();
    }
    q.close();
    for (auto& t : consumers) t.join();

    EXPECT_EQ(drained_count.load(), kItems);
    EXPECT_EQ(drained_sum.load(), pushed_sum);
}

// close() must release consumers blocked on an *empty* queue — the
// wait-predicate race the dispatcher shutdown depends on.
TEST(BoundedPriorityQueue, CloseReleasesConsumersBlockedOnEmptyQueue) {
    BoundedPriorityQueue<int> q(4);
    std::atomic<int> released{0};

    std::vector<std::thread> consumers;
    consumers.reserve(3);
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&, c] {
            if (c % 2 == 0) {
                EXPECT_EQ(q.pop(), std::nullopt);
            } else {
                std::vector<int> batch;
                EXPECT_EQ(q.pop_batch(batch, 8), 0u);
            }
            released.fetch_add(1, std::memory_order_relaxed);
        });
    }

    q.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(released.load(), 3);
}

}  // namespace
}  // namespace cast
