#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cast {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, WorkerCountRespected) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
    EXPECT_THROW(ThreadPool pool(0), PreconditionError);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(100);
    pool.parallel_for(100, [&](std::size_t i) { counts[i]++; });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForSingleWorkerInline) {
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
    ThreadPool pool(2);
    bool touched = false;
    pool.parallel_for(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, SubmitExceptionSurfacesViaFuture) {
    ThreadPool pool(2);
    auto fut = pool.submit([]() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW((void)fut.get(), std::logic_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 500; ++i) {
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            (void)pool.submit([&done] { done++; });
        }
        // Destructor joins; submitted work may or may not complete before
        // stop, but nothing should crash or deadlock.
    }
    SUCCEED();
}

}  // namespace
}  // namespace cast
