#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cast {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, WorkerCountRespected) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
    EXPECT_THROW(ThreadPool pool(0), PreconditionError);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(100);
    pool.parallel_for(100, [&](std::size_t i) { counts[i]++; });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForSingleWorkerInline) {
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
    ThreadPool pool(2);
    bool touched = false;
    pool.parallel_for(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, SubmitExceptionSurfacesViaFuture) {
    ThreadPool pool(2);
    auto fut = pool.submit([]() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW((void)fut.get(), std::logic_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 500; ++i) {
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, ParallelForExplicitGrainVisitsEveryIndexOnce) {
    ThreadPool pool(4);
    // 103 indices in chunks of 7: uneven tail chunk, more chunks than
    // workers — every index must still be visited exactly once.
    std::vector<std::atomic<int>> counts(103);
    pool.parallel_for(103, [&](std::size_t i) { counts[i]++; }, /*grain=*/7);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    // A worker blocked in an inner parallel_for must help drain the pool,
    // otherwise outer+inner on a small pool deadlocks (the planner nests
    // profiling batches inside candidate evaluation this way).
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallel_for(
        8,
        [&](std::size_t) {
            pool.parallel_for(32, [&](std::size_t) { total++; }, /*grain=*/1);
        },
        /*grain=*/1);
    EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadPool, ParallelForAggregatesMultipleExceptions) {
    ThreadPool pool(4);
    try {
        pool.parallel_for(
            16,
            [](std::size_t i) {
                throw std::runtime_error("body " + std::to_string(i));
            },
            /*grain=*/1);
        FAIL() << "expected ParallelForError";
    } catch (const ParallelForError& e) {
        // Every chunk fails, every failure is collected.
        EXPECT_EQ(e.messages().size(), 16u);
        EXPECT_NE(std::string(e.what()).find("16 bodies failed"), std::string::npos);
    }
}

TEST(ThreadPool, ParallelForSingleFailureRethrowsOriginalType) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(64,
                                   [](std::size_t i) {
                                       if (i == 17) throw std::logic_error("one");
                                   },
                                   /*grain=*/4),
                 std::logic_error);
}

TEST(ThreadPool, CastThreadsEnvOverridesDefaultWorkers) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - single-threaded test setup
    setenv("CAST_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::default_workers(), 3u);
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - single-threaded test setup
    setenv("CAST_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::default_workers(), 1u);
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - single-threaded test setup
    unsetenv("CAST_THREADS");
    EXPECT_GE(ThreadPool::default_workers(), 1u);
}

TEST(ThreadPool, SubmitFromWorkerThreadCompletes) {
    ThreadPool pool(2);
    auto outer = pool.submit([&pool] {
        auto inner = pool.submit([] { return 7; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            (void)pool.submit([&done] { done++; });
        }
        // Destructor joins; submitted work may or may not complete before
        // stop, but nothing should crash or deadlock.
    }
    SUCCEED();
}

// Regression for the annotated worker sleep loop (predicate lambda ->
// explicit `while (...) cv_.wait(lock)`): workers that went to sleep on an
// empty pool must wake on later submissions. Short bursts separated by
// yields drive workers into the wait loop between bursts; a lost wakeup
// hangs this test, and an unlocked predicate read trips the TSan lane.
TEST(ThreadPool, SleepingWorkersWakeOnLaterSubmissionBursts) {
    constexpr int kBursts = 40;
    constexpr int kTasksPerBurst = 8;
    ThreadPool pool(3);
    std::atomic<int> done{0};

    for (int burst = 0; burst < kBursts; ++burst) {
        std::vector<std::future<void>> futs;
        futs.reserve(kTasksPerBurst);
        for (int t = 0; t < kTasksPerBurst; ++t) {
            futs.push_back(pool.submit([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        for (auto& f : futs) f.get();  // pool drains; workers re-block
        std::this_thread::yield();
    }
    EXPECT_EQ(done.load(), kBursts * kTasksPerBurst);
}

}  // namespace
}  // namespace cast
