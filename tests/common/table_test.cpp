#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cast {
namespace {

TEST(TextTable, RendersAlignedAscii) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, EmptyHeaderThrows) { EXPECT_THROW(TextTable t({}), PreconditionError); }

TEST(TextTable, CsvEscapesSpecials) {
    TextTable t({"k", "v"});
    t.add_row({"a,b", "quote\"inside"});
    std::ostringstream ss;
    t.print_csv(ss);
    EXPECT_EQ(ss.str(), "k,v\n\"a,b\",\"quote\"\"inside\"\n");
}

TEST(TextTable, RowCount) {
    TextTable t({"x"});
    EXPECT_EQ(t.row_count(), 0u);
    t.add_row({"1"});
    t.add_row({"2"});
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Format, FixedPrecision) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(2.0), "2.00");
}

TEST(Format, Percentage) {
    EXPECT_EQ(fmt_pct(0.514), "51.4%");
    EXPECT_EQ(fmt_pct(1.21, 0), "121%");
}

}  // namespace
}  // namespace cast
