#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cast {
namespace {

using namespace cast::literals;

TEST(Units, GigaBytesArithmetic) {
    const GigaBytes a = 100_GB;
    const GigaBytes b = 28_GB;
    EXPECT_DOUBLE_EQ((a + b).value(), 128.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 72.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
    EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
    EXPECT_DOUBLE_EQ(a / b, 100.0 / 28.0);
}

TEST(Units, GigaBytesMegabytesRoundTrip) {
    EXPECT_DOUBLE_EQ(GigaBytes{1.5}.megabytes(), 1500.0);
    EXPECT_DOUBLE_EQ(GigaBytes::from_megabytes(1500.0).value(), 1.5);
}

TEST(Units, VolumeOverBandwidthIsSeconds) {
    const Seconds t = 1_GB / 100_MBps;
    EXPECT_DOUBLE_EQ(t.value(), 10.0);
}

TEST(Units, BandwidthTimesTimeIsVolume) {
    const GigaBytes v = 250_MBps * Seconds{8.0};
    EXPECT_DOUBLE_EQ(v.value(), 2.0);
    EXPECT_DOUBLE_EQ((Seconds{8.0} * 250_MBps).value(), 2.0);
}

TEST(Units, SecondsConversions) {
    EXPECT_DOUBLE_EQ(Seconds::from_minutes(2.5).value(), 150.0);
    EXPECT_DOUBLE_EQ(Seconds::from_hours(1.0).value(), 3600.0);
    EXPECT_DOUBLE_EQ(Seconds{90.0}.minutes(), 1.5);
    EXPECT_DOUBLE_EQ(Seconds{5400.0}.hours(), 1.5);
    EXPECT_DOUBLE_EQ((3_min).value(), 180.0);
}

TEST(Units, ComparisonOperators) {
    EXPECT_LT(10_GB, 20_GB);
    EXPECT_GT(Dollars{2.0}, Dollars{1.0});
    EXPECT_EQ(Seconds{60.0}, 1_min);
    EXPECT_LE(100_MBps, 100_MBps);
}

TEST(Units, CompoundAssignment) {
    GigaBytes g{10.0};
    g += 5_GB;
    EXPECT_DOUBLE_EQ(g.value(), 15.0);
    g -= 3_GB;
    EXPECT_DOUBLE_EQ(g.value(), 12.0);
    g *= 2.0;
    EXPECT_DOUBLE_EQ(g.value(), 24.0);
}

TEST(Units, StreamOutput) {
    std::ostringstream ss;
    ss << 10_GB << " " << 48_MBps << " " << Dollars{1.5} << " " << Seconds{3.0};
    EXPECT_EQ(ss.str(), "10 GB 48 MB/s $1.5 3 s");
}

TEST(Units, ApproxEqual) {
    EXPECT_TRUE(approx_equal(1.0, 1.0));
    EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approx_equal(1.0, 1.001));
    EXPECT_TRUE(approx_equal(0.0, 1e-12));
    EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
    EXPECT_FALSE(approx_equal(1e9, 1.001e9));
}

TEST(Units, DefaultConstructedIsZero) {
    EXPECT_DOUBLE_EQ(GigaBytes{}.value(), 0.0);
    EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
    EXPECT_DOUBLE_EQ(Dollars{}.value(), 0.0);
}

}  // namespace
}  // namespace cast
