// Backoff and CircuitBreaker contract tests. The breaker tests use the
// deterministic op-count cooldown (open_ops) so every transition is exactly
// reproducible — no clock reads, no sleeps.
#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace cast {
namespace {

TEST(Backoff, WaitsGrowGeometricallyAndRespectTheCap) {
    const Backoff b{.max_attempts = 5, .base_ms = 2.0, .multiplier = 3.0, .cap_ms = 10.0};
    b.validate();
    EXPECT_DOUBLE_EQ(b.wait_ms(0), 2.0);
    EXPECT_DOUBLE_EQ(b.wait_ms(1), 6.0);
    EXPECT_DOUBLE_EQ(b.wait_ms(2), 10.0);  // 18 capped
    EXPECT_DOUBLE_EQ(b.wait_ms(3), 10.0);  // stays at the cap
}

TEST(Backoff, SingleAttemptMeansNoRetryAndZeroBaseIsLegal) {
    const Backoff b{.max_attempts = 1, .base_ms = 0.0, .multiplier = 2.0, .cap_ms = 0.0};
    b.validate();
    EXPECT_DOUBLE_EQ(b.wait_ms(0), 0.0);
}

TEST(Backoff, ValidateRejectsNonsense) {
    EXPECT_THROW((Backoff{.max_attempts = 0}.validate()), PreconditionError);
    EXPECT_THROW((Backoff{.max_attempts = 1, .base_ms = -1.0}.validate()),
                 PreconditionError);
    EXPECT_THROW(
        (Backoff{.max_attempts = 1, .base_ms = 1.0, .multiplier = 0.5}.validate()),
        PreconditionError);
    EXPECT_THROW((Backoff{.max_attempts = 1, .base_ms = 5.0, .multiplier = 2.0,
                          .cap_ms = 1.0}
                      .validate()),
                 PreconditionError);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndFailsFastWhileOpen) {
    CircuitBreaker breaker({.failure_threshold = 3, .open_ms = 0.0, .open_ops = 100});
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);

    breaker.record_failure();
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow());

    breaker.record_failure();  // third consecutive: trip
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_FALSE(breaker.allow());
    EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
    CircuitBreaker breaker({.failure_threshold = 2, .open_ms = 0.0, .open_ops = 100});
    breaker.record_failure();
    breaker.record_success();  // streak broken
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, OpCountCooldownAdmitsExactlyOneHalfOpenTrial) {
    CircuitBreaker breaker({.failure_threshold = 1, .open_ms = 0.0, .open_ops = 2});
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);

    // Cooldown counted in refused calls: two refusals, then the trial.
    EXPECT_FALSE(breaker.allow());
    EXPECT_FALSE(breaker.allow());
    EXPECT_TRUE(breaker.allow());  // the half-open trial
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_FALSE(breaker.allow());  // only one trial until it resolves

    breaker.record_success();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, FailedHalfOpenTrialReopensForAnotherCooldown) {
    CircuitBreaker breaker({.failure_threshold = 1, .open_ms = 0.0, .open_ops = 1});
    breaker.record_failure();
    EXPECT_FALSE(breaker.allow());  // cooldown refusal
    EXPECT_TRUE(breaker.allow());   // trial
    breaker.record_failure();       // trial failed
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 2u);
    EXPECT_FALSE(breaker.allow());  // fresh cooldown starts over
    EXPECT_TRUE(breaker.allow());
    breaker.record_success();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, WallClockCooldownEventuallyAdmitsATrial) {
    CircuitBreaker breaker({.failure_threshold = 1, .open_ms = 5.0, .open_ops = 0});
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    // Poll rather than assert an instant transition — only the *eventual*
    // half-open admission is contractual on a wall clock.
    bool admitted = false;
    for (int i = 0; i < 200 && !admitted; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        admitted = breaker.allow();
    }
    EXPECT_TRUE(admitted);
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

// TSan lane: hammer one breaker from many threads. The invariant is not a
// specific state (interleaving-dependent) but that the trip count stays
// coherent and exactly one caller wins any half-open trial window.
TEST(CircuitBreaker, ConcurrentCallersNeverCorruptTheStateMachine) {
    CircuitBreaker breaker({.failure_threshold = 2, .open_ms = 0.0, .open_ops = 3});
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 300;

    std::atomic<std::uint64_t> allowed{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                if (breaker.allow()) {
                    allowed.fetch_add(1, std::memory_order_relaxed);
                    if ((t + i) % 3 == 0) {
                        breaker.record_failure();
                    } else {
                        breaker.record_success();
                    }
                }
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_GT(allowed.load(), 0u);
    const BreakerState final_state = breaker.state();
    EXPECT_TRUE(final_state == BreakerState::kClosed ||
                final_state == BreakerState::kOpen ||
                final_state == BreakerState::kHalfOpen);
    breaker.record_success();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreakerOptions, ValidateRejectsNonsense) {
    EXPECT_THROW((CircuitBreakerOptions{.failure_threshold = 0}.validate()),
                 PreconditionError);
    EXPECT_THROW((CircuitBreakerOptions{.failure_threshold = 1, .open_ms = -1.0}
                      .validate()),
                 PreconditionError);
    EXPECT_THROW((CircuitBreakerOptions{.failure_threshold = 1, .open_ms = 0.0,
                                        .open_ops = -1}
                      .validate()),
                 PreconditionError);
}

}  // namespace
}  // namespace cast
