#include "common/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace cast {
namespace {

TEST(Spline, InterpolatesKnotsExactly) {
    const std::vector<double> xs = {0.0, 1.0, 2.5, 4.0};
    const std::vector<double> ys = {1.0, 3.0, 2.0, 5.0};
    const CubicHermiteSpline s(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(s(xs[i]), ys[i], 1e-12);
    }
}

TEST(Spline, FlatExtrapolationOutsideRange) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {10.0, 20.0, 15.0};
    const CubicHermiteSpline s(xs, ys);
    EXPECT_DOUBLE_EQ(s(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s(-100.0), 10.0);
    EXPECT_DOUBLE_EQ(s(3.0), 15.0);
    EXPECT_DOUBLE_EQ(s(99.0), 15.0);
    EXPECT_DOUBLE_EQ(s.derivative(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.derivative(10.0), 0.0);
}

TEST(Spline, MonotoneDataGivesMonotoneInterpolant) {
    // Fritsch-Carlson's whole point: REG must not invent minima the system
    // does not have, or the annealing solver exploits them.
    const std::vector<double> xs = {100.0, 200.0, 300.0, 500.0, 1000.0};
    const std::vector<double> ys = {800.0, 420.0, 400.0, 395.0, 393.0};
    const CubicHermiteSpline s(xs, ys);
    double prev = s(100.0);
    for (double x = 100.5; x <= 1000.0; x += 0.5) {
        const double y = s(x);
        EXPECT_LE(y, prev + 1e-9) << "non-monotone at x=" << x;
        prev = y;
    }
}

TEST(Spline, IncreasingDataStaysIncreasing) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {0.0, 0.1, 5.0, 5.1};
    const CubicHermiteSpline s(xs, ys);
    double prev = s(0.0);
    for (double x = 0.01; x <= 3.0; x += 0.01) {
        const double y = s(x);
        EXPECT_GE(y, prev - 1e-9) << "non-monotone at x=" << x;
        prev = y;
    }
}

TEST(Spline, RandomizedMonotoneKnotsStayMonotone) {
    // Property check of the Fritsch-Carlson limiter over randomized
    // monotone knot sets, including near-flat runs and steep cliffs (the
    // shapes that push α²+β² past 9 and exercise the clamp + rescale
    // interaction). Any interior dip would hand the annealing solver a
    // phantom optimum.
    Rng rng(4242);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 3 + rng.below(8);
        const bool decreasing = trial % 2 == 0;
        std::vector<double> xs(n);
        std::vector<double> ys(n);
        double x = 1.0 + rng.uniform() * 10.0;
        double y = decreasing ? 500.0 + rng.uniform() * 500.0 : rng.uniform() * 10.0;
        for (std::size_t i = 0; i < n; ++i) {
            xs[i] = x;
            ys[i] = y;
            x += 0.5 + rng.uniform() * 200.0;
            // Mix flat steps (zero secant) with steep ones.
            const double step = rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 300.0;
            y += decreasing ? -step : step;
        }
        const CubicHermiteSpline s(xs, ys);
        double prev = s(xs.front());
        const double span = xs.back() - xs.front();
        for (int k = 1; k <= 400; ++k) {
            const double xi = xs.front() + span * k / 400.0;
            const double yi = s(xi);
            if (decreasing) {
                ASSERT_LE(yi, prev + 1e-9) << "trial " << trial << " x=" << xi;
            } else {
                ASSERT_GE(yi, prev - 1e-9) << "trial " << trial << " x=" << xi;
            }
            prev = yi;
        }
    }
}

TEST(Spline, LinearDataReproducedExactly) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 5.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 11.0};  // y = 2x + 1
    const CubicHermiteSpline s(xs, ys);
    for (double x = 0.0; x <= 5.0; x += 0.1) {
        EXPECT_NEAR(s(x), 2.0 * x + 1.0, 1e-9);
    }
    EXPECT_NEAR(s.derivative(2.7), 2.0, 1e-9);
}

TEST(Spline, ConstantData) {
    const std::vector<double> xs = {0.0, 1.0, 2.0};
    const std::vector<double> ys = {7.0, 7.0, 7.0};
    const CubicHermiteSpline s(xs, ys);
    for (double x = -1.0; x <= 3.0; x += 0.25) EXPECT_DOUBLE_EQ(s(x), 7.0);
}

TEST(Spline, TwoPointsIsLinear) {
    const std::vector<double> xs = {1.0, 3.0};
    const std::vector<double> ys = {2.0, 6.0};
    const CubicHermiteSpline s(xs, ys);
    EXPECT_NEAR(s(2.0), 4.0, 1e-12);
}

TEST(Spline, ContinuityAcrossSegments) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {0.0, 2.0, 1.0, 4.0};
    const CubicHermiteSpline s(xs, ys);
    for (double knot : {1.0, 2.0}) {
        EXPECT_NEAR(s(knot - 1e-9), s(knot + 1e-9), 1e-6);
    }
}

TEST(Spline, DerivativeMatchesFiniteDifference) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 4.0};
    const std::vector<double> ys = {1.0, 2.5, 2.0, 8.0};
    const CubicHermiteSpline s(xs, ys);
    for (double x : {0.3, 0.9, 1.5, 2.7, 3.9}) {
        const double h = 1e-6;
        const double fd = (s(x + h) - s(x - h)) / (2 * h);
        EXPECT_NEAR(s.derivative(x), fd, 1e-4) << "x=" << x;
    }
}

TEST(Spline, RejectsBadInput) {
    const std::vector<double> one = {1.0};
    EXPECT_THROW(CubicHermiteSpline(one, one), PreconditionError);
    const std::vector<double> xs = {1.0, 1.0};
    const std::vector<double> ys = {1.0, 2.0};
    EXPECT_THROW(CubicHermiteSpline(xs, ys), PreconditionError);
    const std::vector<double> decreasing = {2.0, 1.0};
    EXPECT_THROW(CubicHermiteSpline(decreasing, ys), PreconditionError);
    const std::vector<double> mismatched = {1.0, 2.0, 3.0};
    EXPECT_THROW(CubicHermiteSpline(mismatched, ys), PreconditionError);
}

TEST(Spline, EmptyStateQueries) {
    CubicHermiteSpline s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_THROW((void)s(1.0), PreconditionError);
}

TEST(Spline, KnotAccessors) {
    const std::vector<double> xs = {1.0, 2.0, 4.0};
    const std::vector<double> ys = {5.0, 6.0, 7.0};
    const CubicHermiteSpline s(xs, ys);
    EXPECT_DOUBLE_EQ(s.min_x(), 1.0);
    EXPECT_DOUBLE_EQ(s.max_x(), 4.0);
    ASSERT_EQ(s.knots_x().size(), 3u);
    EXPECT_DOUBLE_EQ(s.knots_y()[2], 7.0);
}

}  // namespace
}  // namespace cast
