#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cast {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
    EXPECT_NO_THROW(CAST_EXPECTS(1 + 1 == 2));
    EXPECT_NO_THROW(CAST_EXPECTS_MSG(true, "fine"));
}

TEST(Contracts, ExpectsThrowsPreconditionError) {
    EXPECT_THROW(CAST_EXPECTS(false), PreconditionError);
}

TEST(Contracts, EnsuresThrowsInvariantError) {
    EXPECT_THROW(CAST_ENSURES(false), InvariantError);
}

TEST(Contracts, MessageContainsExpressionAndLocation) {
    try {
        CAST_EXPECTS_MSG(2 < 1, "two is not less than one");
        FAIL() << "should have thrown";
    } catch (const PreconditionError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 < 1"), std::string::npos);
        EXPECT_NE(what.find("two is not less than one"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(Contracts, EnsuresMessageMentionsInvariant) {
    try {
        CAST_ENSURES_MSG(false, "broke it");
        FAIL() << "should have thrown";
    } catch (const InvariantError& e) {
        EXPECT_NE(std::string(e.what()).find("invariant failed"), std::string::npos);
    }
}

TEST(Contracts, ExceptionHierarchy) {
    // Both contract errors are logic_errors; ValidationError is an
    // invalid_argument. Callers can catch coarsely. SimulationError is a
    // runtime_error: a modeled operational failure, not a bug.
    EXPECT_THROW(throw PreconditionError("x"), std::logic_error);
    EXPECT_THROW(throw InvariantError("x"), std::logic_error);
    EXPECT_THROW(throw ValidationError("x"), std::invalid_argument);
    EXPECT_THROW(throw SimulationError("x"), std::runtime_error);
}

TEST(SimulationErrorTest, CarriesJobAndPhaseContext) {
    const SimulationError e("task 3 exhausted 4 attempts", "Sort-1", "map");
    EXPECT_EQ(e.detail(), "task 3 exhausted 4 attempts");
    EXPECT_EQ(e.job(), "Sort-1");
    EXPECT_EQ(e.phase(), "map");
    const std::string what = e.what();
    EXPECT_NE(what.find("Sort-1"), std::string::npos);
    EXPECT_NE(what.find("map"), std::string::npos);
    EXPECT_NE(what.find("task 3 exhausted 4 attempts"), std::string::npos);
}

TEST(SimulationErrorTest, ContextDefaultsToUnknown) {
    const SimulationError e("boom");
    EXPECT_TRUE(e.job().empty());
    EXPECT_TRUE(e.phase().empty());
    EXPECT_EQ(std::string(e.what()), "simulated failure: boom");
}

TEST(SimulationErrorTest, WithContextPreservesDetail) {
    const SimulationError bare("retries exhausted");
    const SimulationError decorated = bare.with_context("Grep-2", "stage_in");
    EXPECT_EQ(decorated.detail(), bare.detail());
    EXPECT_EQ(decorated.job(), "Grep-2");
    EXPECT_EQ(decorated.phase(), "stage_in");
}

}  // namespace
}  // namespace cast
