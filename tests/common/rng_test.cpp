#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace cast {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversFullRangeUniformly) {
    Rng rng(13);
    std::array<int, 5> counts{};
    const int n = 50000;
    for (int i = 0; i < n; ++i) counts[rng.below(5)]++;
    for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
}

TEST(Rng, BelowOneAlwaysZero) {
    Rng rng(17);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
    Rng rng(19);
    EXPECT_THROW((void)rng.below(0), PreconditionError);
}

TEST(Rng, BetweenInclusive) {
    Rng rng(23);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(29);
    const int n = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalJitterHasUnitMedian) {
    Rng rng(37);
    std::vector<double> xs;
    const int n = 20001;
    xs.reserve(n);
    for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal_jitter(0.1));
    std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
    EXPECT_NEAR(xs[n / 2], 1.0, 0.01);
    for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, WeightedIndexFollowsWeights) {
    Rng rng(41);
    const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::array<int, 4> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
    Rng rng(43);
    const std::vector<double> empty;
    EXPECT_THROW((void)rng.weighted_index(empty), PreconditionError);
    const std::vector<double> zeros = {0.0, 0.0};
    EXPECT_THROW((void)rng.weighted_index(zeros), PreconditionError);
    const std::vector<double> negative = {1.0, -0.5};
    EXPECT_THROW((void)rng.weighted_index(negative), PreconditionError);
}

TEST(Rng, ForkIndependentStreams) {
    Rng parent(47);
    Rng c1 = parent.fork(1);
    Rng parent2(47);
    Rng c2 = parent2.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (c1() == c2()) ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
    Rng a(51);
    Rng b(51);
    Rng fa = a.fork(9);
    Rng fb = b.fork(9);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(fa(), fb());
}

TEST(SplitMix64, KnownSequenceIsStable) {
    SplitMix64 sm(0);
    const auto first = sm.next();
    SplitMix64 sm2(0);
    EXPECT_EQ(first, sm2.next());
    EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace cast
