// Parameterized property tests over the cluster simulator: invariants that
// must hold for every (application, tier, size, cluster) combination, not
// just the calibrated points the figure benches exercise.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/mapreduce.hpp"

namespace cast::sim {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec sized_job(AppKind app, double gb, int id = 1) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = std::string(workload::app_name(app)) + "-prop",
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

TierCapacities generous_caps() {
    TierCapacities caps;
    caps.set(StorageTier::kEphemeralSsd, GigaBytes{750.0});
    caps.set(StorageTier::kPersistentSsd, GigaBytes{500.0});
    caps.set(StorageTier::kPersistentHdd, GigaBytes{500.0});
    return caps;
}

ClusterSim sim_with(int vms, std::uint64_t seed = 5, double jitter = 0.0) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = vms;
    return ClusterSim(cluster, cloud::StorageCatalog::google_cloud(), generous_caps(),
                      SimOptions{.seed = seed, .jitter_sigma = jitter});
}

// ---------------------------------------------------------------------------
// Sweep every app on every tier.
// ---------------------------------------------------------------------------

class AppTierSweep
    : public ::testing::TestWithParam<std::tuple<AppKind, StorageTier>> {};

TEST_P(AppTierSweep, MakespanPositiveAndPhaseConsistent) {
    const auto [app, tier] = GetParam();
    auto sim = sim_with(2);
    const auto r = sim.run_job(JobPlacement::on_tier(sized_job(app, 8.0), tier));
    EXPECT_GT(r.makespan.value(), 0.0);
    EXPECT_NEAR(r.makespan.value(), r.phases.total().value(), 1e-6);
    EXPECT_GE(r.phases.map.value(), 0.0);
    EXPECT_GE(r.phases.shuffle.value(), 0.0);
    EXPECT_GE(r.phases.reduce.value(), 0.0);
}

TEST_P(AppTierSweep, MakespanMonotoneInInputSize) {
    const auto [app, tier] = GetParam();
    auto sim = sim_with(2);
    double prev = 0.0;
    for (double gb : {2.0, 8.0, 32.0}) {
        const double t =
            sim.run_job(JobPlacement::on_tier(sized_job(app, gb), tier)).makespan.value();
        EXPECT_GT(t, prev) << gb << " GB";
        prev = t;
    }
}

TEST_P(AppTierSweep, MoreWorkersNeverSlower) {
    const auto [app, tier] = GetParam();
    const auto job = sized_job(app, 16.0);
    const double t2 =
        sim_with(2).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    const double t8 =
        sim_with(8).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    // Per-VM volumes multiply with workers; allow 2% slack for staging
    // phases that are already cluster-wide-capped (objStore ceilings).
    EXPECT_LE(t8, t2 * 1.02);
}

TEST_P(AppTierSweep, DeterministicAcrossIdenticalRuns) {
    const auto [app, tier] = GetParam();
    const auto job = sized_job(app, 8.0);
    const double a =
        sim_with(3, 77, 0.06).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    const double b =
        sim_with(3, 77, 0.06).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_P(AppTierSweep, JitterStaysNearDeterministicRuntime) {
    const auto [app, tier] = GetParam();
    const auto job = sized_job(app, 8.0);
    const double det =
        sim_with(2, 5, 0.0).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    const double jit =
        sim_with(2, 5, 0.08).run_job(JobPlacement::on_tier(job, tier)).makespan.value();
    EXPECT_NEAR(jit / det, 1.0, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllTiers, AppTierSweep,
    ::testing::Combine(::testing::ValuesIn(workload::kAllApps),
                       ::testing::ValuesIn(cloud::kAllTiers)),
    [](const ::testing::TestParamInfo<AppTierSweep::ParamType>& info) {
        return std::string(workload::app_name(std::get<0>(info.param))) + "_" +
               std::string(cloud::tier_name(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Capacity sweep on the block tiers: bandwidth scaling must be monotone.
// ---------------------------------------------------------------------------

class CapacitySweep
    : public ::testing::TestWithParam<std::tuple<StorageTier, double>> {};

TEST_P(CapacitySweep, BiggerVolumeNeverSlowerForIoBoundScan) {
    const auto [tier, cap] = GetParam();
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    auto runtime_at = [&](double c) {
        TierCapacities caps;
        caps.set(tier, GigaBytes{c});
        ClusterSim sim(cluster, catalog, caps, SimOptions{.seed = 3, .jitter_sigma = 0.0});
        return sim.run_job(JobPlacement::on_tier(sized_job(AppKind::kGrep, 4.0), tier))
            .makespan.value();
    };
    EXPECT_LE(runtime_at(cap * 2.0), runtime_at(cap) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    BlockTiers, CapacitySweep,
    ::testing::Combine(::testing::Values(StorageTier::kPersistentSsd,
                                         StorageTier::kPersistentHdd),
                       ::testing::Values(50.0, 100.0, 200.0, 400.0)),
    [](const ::testing::TestParamInfo<CapacitySweep::ParamType>& info) {
        return std::string(cloud::tier_name(std::get<0>(info.param))) + "_" +
               std::to_string(static_cast<int>(std::get<1>(info.param))) + "gb";
    });

// ---------------------------------------------------------------------------
// Work conservation: total bytes moved / makespan never exceeds the
// provisioned aggregate bandwidth of the slowest phase's resources.
// ---------------------------------------------------------------------------

class ConservationSweep : public ::testing::TestWithParam<AppKind> {};

TEST_P(ConservationSweep, ThroughputBoundedByProvisionedBandwidth) {
    const AppKind app = GetParam();
    const int vms = 2;
    auto sim = sim_with(vms);
    const auto job = sized_job(app, 16.0);
    const auto r = sim.run_job(JobPlacement::on_tier(job, StorageTier::kPersistentSsd));
    const auto& profile = workload::ApplicationProfile::of(app);
    // Bytes through the persSSD pools during the map phase: input read +
    // intermediate write, per iteration.
    const double map_mb =
        (job.input.megabytes() + job.intermediate().megabytes()) * profile.iterations();
    const double pool_mbps = sim.tier_bandwidth_per_vm(StorageTier::kPersistentSsd).value() *
                             vms;
    EXPECT_GE(r.phases.map.value(), map_mb / pool_mbps - 1e-6)
        << "map phase finished faster than the provisioned bandwidth allows";
}

INSTANTIATE_TEST_SUITE_P(AllApps, ConservationSweep, ::testing::ValuesIn(workload::kAllApps),
                         [](const ::testing::TestParamInfo<AppKind>& info) {
                             return std::string(workload::app_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Input splits: any mixed placement is bounded by its pure endpoints.
// ---------------------------------------------------------------------------

class SplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweep, MixedRuntimeBetweenPureEndpoints) {
    const double fraction = GetParam();
    auto sim = sim_with(1);
    auto run_with = [&](std::vector<InputSplit> splits) {
        JobPlacement p = JobPlacement::on_tier(sized_job(AppKind::kGrep, 6.0),
                                               StorageTier::kEphemeralSsd);
        p.stage_in = false;
        p.stage_out = false;
        p.input_splits = std::move(splits);
        return sim.run_job(p).makespan.value();
    };
    const double fast = run_with({{StorageTier::kEphemeralSsd, 1.0}});
    const double slow = run_with({{StorageTier::kPersistentHdd, 1.0}});
    const double mixed = run_with({{StorageTier::kEphemeralSsd, fraction},
                                   {StorageTier::kPersistentHdd, 1.0 - fraction}});
    EXPECT_GE(mixed, fast - 1e-6);
    EXPECT_LE(mixed, slow + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace cast::sim
