// Parameterized property tests over workflow DAG utilities and the
// workflow evaluator, across random DAG shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "core/castpp.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::workload {
namespace {

JobSpec wf_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return JobSpec{.id = id,
                   .name = "wfp-" + std::to_string(id),
                   .app = app,
                   .input = GigaBytes{gb},
                   .map_tasks = maps,
                   .reduce_tasks = std::max(1, maps / 4),
                   .reuse_group = std::nullopt};
}

/// Random DAG: edges only from lower to higher ids (acyclic by
/// construction), with tunable density.
Workflow random_dag(std::uint64_t seed, int n, double edge_prob) {
    Rng rng(seed);
    std::vector<JobSpec> jobs;
    std::vector<WorkflowEdge> edges;
    for (int i = 1; i <= n; ++i) {
        jobs.push_back(wf_job(i, kAllApps[rng.below(kAllApps.size())],
                              rng.uniform(10.0, 100.0)));
    }
    for (int u = 1; u <= n; ++u) {
        for (int v = u + 1; v <= n; ++v) {
            if (rng.uniform() < edge_prob) edges.push_back({u, v});
        }
    }
    return Workflow("dag-" + std::to_string(seed), std::move(jobs), std::move(edges),
                    Seconds{1e6});
}

class DagSweep : public ::testing::TestWithParam<std::uint64_t> {
protected:
    Workflow wf = random_dag(GetParam(), 4 + static_cast<int>(GetParam() % 7), 0.35);
};

TEST_P(DagSweep, TopologicalOrderIsAValidLinearization) {
    const auto order = wf.topological_order();
    ASSERT_EQ(order.size(), wf.size());
    std::vector<std::size_t> position(wf.size());
    for (std::size_t k = 0; k < order.size(); ++k) position[order[k]] = k;
    for (const auto& e : wf.edges()) {
        EXPECT_LT(position[wf.index_of(e.from_job)], position[wf.index_of(e.to_job)]);
    }
}

TEST_P(DagSweep, DfsVisitsEveryJobExactlyOnce) {
    auto order = wf.dfs_order();
    ASSERT_EQ(order.size(), wf.size());
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST_P(DagSweep, PredecessorsAndSuccessorsAreDuals) {
    for (std::size_t u = 0; u < wf.size(); ++u) {
        for (std::size_t v : wf.successors(u)) {
            const auto preds = wf.predecessors(v);
            EXPECT_NE(std::find(preds.begin(), preds.end(), u), preds.end());
        }
    }
}

TEST_P(DagSweep, RootsHaveNoPredecessors) {
    const auto roots = wf.roots();
    EXPECT_FALSE(roots.empty());
    for (std::size_t r : roots) EXPECT_TRUE(wf.predecessors(r).empty());
}

TEST_P(DagSweep, EvaluatorRuntimeDecomposes) {
    core::WorkflowEvaluator eval(cast::testing::small_models(), wf);
    const auto plan =
        core::WorkflowPlan::uniform(wf.size(), cloud::StorageTier::kPersistentSsd);
    const auto e = eval.evaluate(plan);
    ASSERT_TRUE(e.feasible);
    double sum = 0.0;
    for (const auto& t : e.job_runtimes) sum += t.value();
    for (const auto& t : e.transfer_times) sum += t.value();
    EXPECT_NEAR(e.total_runtime.value(), sum, 1e-6);
}

TEST_P(DagSweep, UniformPlanHasNoTransfers) {
    core::WorkflowEvaluator eval(cast::testing::small_models(), wf);
    const auto e = eval.evaluate(
        core::WorkflowPlan::uniform(wf.size(), cloud::StorageTier::kPersistentHdd));
    ASSERT_TRUE(e.feasible);
    for (const auto& t : e.transfer_times) EXPECT_DOUBLE_EQ(t.value(), 0.0);
}

TEST_P(DagSweep, SplittingOneJobOnlyAddsTransfersOnItsEdges) {
    core::WorkflowEvaluator eval(cast::testing::small_models(), wf);
    auto plan = core::WorkflowPlan::uniform(wf.size(), cloud::StorageTier::kPersistentSsd);
    const std::size_t moved = wf.size() / 2;
    plan.decisions[moved] = {cloud::StorageTier::kPersistentHdd, 1.0};
    const auto e = eval.evaluate(plan);
    ASSERT_TRUE(e.feasible);
    for (std::size_t k = 0; k < wf.edges().size(); ++k) {
        const auto& edge = wf.edges()[k];
        const bool touches = wf.index_of(edge.from_job) == moved ||
                             wf.index_of(edge.to_job) == moved;
        if (!touches) {
            EXPECT_DOUBLE_EQ(e.transfer_times[k].value(), 0.0);
        } else if (wf.jobs()[wf.index_of(edge.from_job)].output().value() > 0.0) {
            EXPECT_GT(e.transfer_times[k].value(), 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagSweep,
                         ::testing::Values(2u, 9u, 16u, 25u, 36u, 49u, 64u, 81u));

}  // namespace
}  // namespace cast::workload
