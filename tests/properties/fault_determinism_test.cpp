// Seeded-determinism properties of the fault-injection subsystem:
//   * an all-zero FaultProfile reproduces the fault-free simulator and
//     deployer bit-for-bit (every injection site is gated on enabled());
//   * a nonzero seeded profile is exactly reproducible — same makespans,
//     same FaultStats, same deployment fault logs;
//   * distinct fault seeds sample distinct fault histories.
#include <gtest/gtest.h>

#include "core/deployer.hpp"
#include "sim/mapreduce.hpp"
#include "test_support.hpp"

namespace cast {
namespace {

using cloud::StorageTier;
using workload::AppKind;
using cast::literals::operator""_GB;

workload::JobSpec prop_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

sim::ClusterSim prop_sim(const sim::SimOptions& options, int vms = 2) {
    sim::TierCapacities caps;
    caps.set(StorageTier::kEphemeralSsd, 375.0_GB);
    caps.set(StorageTier::kPersistentSsd, 500.0_GB);
    caps.set(StorageTier::kPersistentHdd, 500.0_GB);
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = vms;
    return sim::ClusterSim(cluster, cloud::StorageCatalog::google_cloud(), caps, options);
}

workload::Workload prop_workload() {
    return workload::Workload({prop_job(1, AppKind::kSort, 30.0),
                               prop_job(2, AppKind::kGrep, 40.0),
                               prop_job(3, AppKind::kKMeans, 20.0)});
}

TEST(FaultDeterminism, ZeroProfileIsBitIdenticalInSimulator) {
    const auto job = prop_job(1, AppKind::kSort, 4.0);
    const auto placement = sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd);

    const sim::SimOptions plain{.seed = 5, .jitter_sigma = 0.06};
    // A profile with a seed and tweaked knobs that still cannot perturb
    // anything must be exactly the fault-free code path.
    sim::SimOptions zeroed = plain;
    zeroed.faults.seed = 99;
    zeroed.faults.task_max_attempts = 7;
    zeroed.faults.straggler_prob = 0.9;  // factor stays 1: no-op
    ASSERT_FALSE(zeroed.faults.enabled());

    const sim::JobResult a = prop_sim(plain).run_job(placement);
    const sim::JobResult b = prop_sim(zeroed).run_job(placement);
    EXPECT_EQ(a.makespan.value(), b.makespan.value());  // bit-identical, not NEAR
    EXPECT_EQ(a.phases.stage_in.value(), b.phases.stage_in.value());
    EXPECT_EQ(a.phases.map.value(), b.phases.map.value());
    EXPECT_EQ(a.phases.shuffle.value(), b.phases.shuffle.value());
    EXPECT_EQ(a.phases.reduce.value(), b.phases.reduce.value());
    EXPECT_EQ(a.phases.stage_out.value(), b.phases.stage_out.value());
    EXPECT_FALSE(b.faults.any());
}

TEST(FaultDeterminism, ZeroProfileIsBitIdenticalInDeployment) {
    core::PlanEvaluator eval(testing::small_models(), prop_workload());
    const auto plan = core::TieringPlan::uniform(3, StorageTier::kPersistentSsd);

    const auto plain =
        core::Deployer(sim::SimOptions{.seed = 3, .jitter_sigma = 0.06}).deploy(eval, plan);
    sim::SimOptions zeroed{.seed = 3, .jitter_sigma = 0.06};
    zeroed.faults.seed = 2718;
    const auto withseed = core::Deployer(zeroed).deploy(eval, plan);

    EXPECT_EQ(plain.total_runtime.value(), withseed.total_runtime.value());
    EXPECT_EQ(plain.vm_cost.value(), withseed.vm_cost.value());
    EXPECT_EQ(plain.storage_cost.value(), withseed.storage_cost.value());
    EXPECT_EQ(withseed.retry_count, 0);
    EXPECT_TRUE(withseed.degraded_jobs.empty());
    EXPECT_TRUE(withseed.fault_log.empty());
}

TEST(FaultDeterminism, SeededProfileReproducesMakespanAndStats) {
    const auto job = prop_job(1, AppKind::kGrep, 6.0);
    const auto placement = sim::JobPlacement::on_tier(job, StorageTier::kObjectStore);
    sim::SimOptions faulty{.seed = 5, .jitter_sigma = 0.06};
    faulty.faults = sim::FaultProfile::scaled(0.75, 7);

    const sim::JobResult a = prop_sim(faulty).run_job(placement);
    const sim::JobResult b = prop_sim(faulty).run_job(placement);
    EXPECT_EQ(a.makespan.value(), b.makespan.value());
    EXPECT_TRUE(a.faults == b.faults);
    EXPECT_TRUE(a.faults.any());
}

TEST(FaultDeterminism, SeededProfilePerturbsButFaultFreeBaselineUnchanged) {
    const auto job = prop_job(1, AppKind::kGrep, 6.0);
    const auto placement = sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    const sim::SimOptions plain{.seed = 5, .jitter_sigma = 0.06};
    sim::SimOptions faulty = plain;
    faulty.faults = sim::FaultProfile::scaled(0.75, 7);

    const double calm = prop_sim(plain).run_job(placement).makespan.value();
    const double rough = prop_sim(faulty).run_job(placement).makespan.value();
    EXPECT_GT(rough, calm);  // throttling + stragglers must cost time
    // And the fault stream is independent of the jitter stream: running the
    // plain simulation again still reproduces the original number.
    EXPECT_EQ(prop_sim(plain).run_job(placement).makespan.value(), calm);
}

TEST(FaultDeterminism, DistinctFaultSeedsSampleDistinctHistories) {
    const auto job = prop_job(1, AppKind::kGrep, 6.0);
    const auto placement = sim::JobPlacement::on_tier(job, StorageTier::kObjectStore);
    sim::SimOptions a{.seed = 5, .jitter_sigma = 0.0};
    a.faults = sim::FaultProfile::scaled(0.75, 7);
    sim::SimOptions b = a;
    b.faults = sim::FaultProfile::scaled(0.75, 8);
    const sim::JobResult ra = prop_sim(a).run_job(placement);
    const sim::JobResult rb = prop_sim(b).run_job(placement);
    EXPECT_FALSE(ra.faults == rb.faults);
    EXPECT_NE(ra.makespan.value(), rb.makespan.value());
}

TEST(FaultDeterminism, DeployerFaultHandlingReproducible) {
    core::PlanEvaluator eval(testing::small_models(), prop_workload());
    const auto plan = core::TieringPlan::uniform(3, StorageTier::kPersistentSsd);
    sim::SimOptions rough{.seed = 3, .jitter_sigma = 0.06};
    rough.faults.seed = 11;
    rough.faults.task_kill_prob = 0.9;
    rough.faults.task_max_attempts = 1;

    const auto a = core::Deployer(rough).deploy(eval, plan);
    const auto b = core::Deployer(rough).deploy(eval, plan);
    EXPECT_EQ(a.total_runtime.value(), b.total_runtime.value());
    EXPECT_EQ(a.retry_count, b.retry_count);
    EXPECT_EQ(a.degraded_jobs, b.degraded_jobs);
    EXPECT_EQ(a.fault_log, b.fault_log);
    EXPECT_GT(a.retry_count, 0);
    EXPECT_FALSE(a.fault_log.empty());
}

}  // namespace
}  // namespace cast
