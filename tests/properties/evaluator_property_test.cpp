// Parameterized property tests over the Eq. 2-6 plan evaluator.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/utility.hpp"
#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::Workload seeded_workload(std::uint64_t seed, std::size_t jobs) {
    Rng rng(seed);
    std::vector<workload::JobSpec> specs;
    for (std::size_t i = 0; i < jobs; ++i) {
        const AppKind app = workload::kAllApps[rng.below(workload::kAllApps.size())];
        const double gb = rng.uniform(20.0, 300.0);
        const int maps = std::max(1, static_cast<int>(gb / 0.128));
        specs.push_back(workload::JobSpec{.id = static_cast<int>(i) + 1,
                                          .name = "ev-" + std::to_string(i),
                                          .app = app,
                                          .input = GigaBytes{gb},
                                          .map_tasks = maps,
                                          .reduce_tasks = std::max(1, maps / 4),
                                          .reuse_group = std::nullopt});
    }
    return workload::Workload(std::move(specs));
}

class EvaluatorTierSweep
    : public ::testing::TestWithParam<std::tuple<StorageTier, std::uint64_t>> {};

TEST_P(EvaluatorTierSweep, UtilityMatchesItsDefinition) {
    const auto [tier, seed] = GetParam();
    PlanEvaluator eval(testing::small_models(), seeded_workload(seed, 6));
    const auto e = eval.evaluate(TieringPlan::uniform(6, tier));
    ASSERT_TRUE(e.feasible) << cloud::tier_name(tier);
    EXPECT_NEAR(e.utility,
                (1.0 / e.total_runtime.minutes()) / e.total_cost().value(), 1e-15);
}

TEST_P(EvaluatorTierSweep, CapacityCoversEq3ForEveryJob) {
    const auto [tier, seed] = GetParam();
    const auto w = seeded_workload(seed, 6);
    PlanEvaluator eval(testing::small_models(), w);
    const auto caps = eval.capacities(TieringPlan::uniform(6, tier));
    double required = 0.0;
    for (const auto& j : w.jobs()) required += j.capacity_requirement().value();
    EXPECT_GE(caps.aggregate_of(tier).value(), required - 1e-6);
}

TEST_P(EvaluatorTierSweep, VmCostLinearInRuntimeStorageStepwise) {
    const auto [tier, seed] = GetParam();
    PlanEvaluator eval(testing::small_models(), seeded_workload(seed, 6));
    const auto caps = eval.capacities(TieringPlan::uniform(6, tier));
    const auto [vm30, st30] = eval.costs_for(Seconds::from_minutes(30.0), caps);
    const auto [vm60, st60] = eval.costs_for(Seconds::from_minutes(60.0), caps);
    const auto [vm90, st90] = eval.costs_for(Seconds::from_minutes(90.0), caps);
    EXPECT_NEAR(vm60.value(), 2.0 * vm30.value(), 1e-9);
    EXPECT_NEAR(vm90.value(), 3.0 * vm30.value(), 1e-9);
    EXPECT_DOUBLE_EQ(st30.value(), st60.value());        // same billed hour
    EXPECT_NEAR(st90.value(), 2.0 * st30.value(), 1e-9);  // next hour
}

TEST_P(EvaluatorTierSweep, OverprovisionNeverLengthensModeledRuntime) {
    const auto [tier, seed] = GetParam();
    PlanEvaluator eval(testing::small_models(), seeded_workload(seed, 6));
    const auto exact = eval.evaluate(TieringPlan::uniform(6, tier, 1.0));
    const auto padded = eval.evaluate(TieringPlan::uniform(6, tier, 3.0));
    if (!exact.feasible || !padded.feasible) GTEST_SKIP();
    // More capacity -> same or faster (block-tier bandwidth scaling),
    // within a small spline tolerance.
    EXPECT_LE(padded.total_runtime.value(), exact.total_runtime.value() * 1.02);
    // And it always costs at least as much in storage.
    EXPECT_GE(padded.storage_cost.value(), exact.storage_cost.value() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TiersAndSeeds, EvaluatorTierSweep,
    ::testing::Combine(::testing::ValuesIn(cloud::kAllTiers),
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<EvaluatorTierSweep::ParamType>& info) {
        return std::string(cloud::tier_name(std::get<0>(info.param))) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Reuse-aware accounting invariants.
// ---------------------------------------------------------------------------

class ReuseAccountingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReuseAccountingSweep, AwareNeverChargesMoreCapacityThanOblivious) {
    const auto seed = GetParam();
    Rng rng(seed);
    std::vector<workload::JobSpec> specs;
    const double gb = rng.uniform(50.0, 200.0);
    for (int i = 0; i < 6; ++i) {
        const int maps = std::max(1, static_cast<int>(gb / 0.128));
        specs.push_back(workload::JobSpec{.id = i + 1,
                                          .name = "ra-" + std::to_string(i),
                                          .app = AppKind::kGrep,
                                          .input = GigaBytes{gb},
                                          .map_tasks = maps,
                                          .reduce_tasks = std::max(1, maps / 4),
                                          .reuse_group = i < 4 ? std::optional<int>(1)
                                                               : std::nullopt});
    }
    const workload::Workload w(specs);
    PlanEvaluator oblivious(testing::small_models(), w, EvalOptions{false});
    PlanEvaluator aware(testing::small_models(), w, EvalOptions{true});
    for (StorageTier tier : cloud::kAllTiers) {
        const auto plan = TieringPlan::uniform(w.size(), tier);
        EXPECT_LE(aware.capacities(plan).total().value(),
                  oblivious.capacities(plan).total().value() + 1e-6)
            << cloud::tier_name(tier);
    }
}

TEST_P(ReuseAccountingSweep, ExactlyOneLeaderPerGroup) {
    const auto w = [&] {
        std::vector<workload::JobSpec> specs;
        for (int i = 0; i < 9; ++i) {
            specs.push_back(workload::JobSpec{.id = i + 1,
                                              .name = "g-" + std::to_string(i),
                                              .app = AppKind::kSort,
                                              .input = GigaBytes{64.0},
                                              .map_tasks = 500,
                                              .reduce_tasks = 125,
                                              .reuse_group = (i % 3) + 1});
        }
        return workload::Workload(specs);
    }();
    PlanEvaluator aware(testing::small_models(), w, EvalOptions{true});
    std::map<int, int> leaders;
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (aware.pays_input_download(i)) leaders[*w.job(i).reuse_group]++;
    }
    for (const auto& [group, count] : leaders) EXPECT_EQ(count, 1) << "group " << group;
    EXPECT_EQ(leaders.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseAccountingSweep, ::testing::Values(5u, 17u, 29u));

}  // namespace
}  // namespace cast::core
