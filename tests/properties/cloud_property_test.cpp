// Parameterized property tests over the cloud catalog: provisioning and
// pricing invariants for every service.
#include <gtest/gtest.h>

#include <string>

#include "cloud/storage.hpp"
#include "common/rng.hpp"

namespace cast::cloud {
namespace {

class ServiceSweep : public ::testing::TestWithParam<StorageTier> {
protected:
    StorageCatalog catalog = StorageCatalog::google_cloud();
    const StorageService& service() { return catalog.service(GetParam()); }
};

TEST_P(ServiceSweep, ProvisionIsIdempotent) {
    Rng rng(42 + tier_index(GetParam()));
    for (int i = 0; i < 200; ++i) {
        const GigaBytes req{rng.uniform(0.0, 1400.0)};
        const GigaBytes once = service().provision(req);
        EXPECT_DOUBLE_EQ(service().provision(once).value(), once.value())
            << "request " << req.value();
    }
}

TEST_P(ServiceSweep, ProvisionNeverShrinksTheRequest) {
    Rng rng(7 + tier_index(GetParam()));
    for (int i = 0; i < 200; ++i) {
        const GigaBytes req{rng.uniform(0.0, 1400.0)};
        EXPECT_GE(service().provision(req).value(), req.value() - 1e-9);
    }
}

TEST_P(ServiceSweep, ProvisionIsMonotone) {
    Rng rng(11 + tier_index(GetParam()));
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(0.0, 1400.0);
        const double b = a + rng.uniform(0.0, 100.0);
        EXPECT_LE(service().provision(GigaBytes{a}).value(),
                  service().provision(GigaBytes{b}).value() + 1e-9);
    }
}

TEST_P(ServiceSweep, PerformanceMonotoneInCapacity) {
    const auto& svc = service();
    double prev_bw = 0.0;
    double prev_iops = 0.0;
    for (double c = 10.0; c <= 1500.0; c += 10.0) {
        const auto p = svc.performance(GigaBytes{c});
        EXPECT_GE(p.read_bw.value(), prev_bw - 1e-9) << c;
        EXPECT_GE(p.iops.value(), prev_iops - 1e-9) << c;
        prev_bw = p.read_bw.value();
        prev_iops = p.iops.value();
    }
}

TEST_P(ServiceSweep, ClusterBandwidthScalesSublinearlyAndMonotonically) {
    const auto& svc = service();
    const GigaBytes cap{375.0};
    double prev_r = 0.0;
    double prev_w = 0.0;
    for (int nvm = 1; nvm <= 32; ++nvm) {
        const double r = svc.cluster_read_bw(cap, nvm).value();
        const double w = svc.cluster_write_bw(cap, nvm).value();
        EXPECT_GE(r, prev_r - 1e-9);
        EXPECT_GE(w, prev_w - 1e-9);
        // Never more than linear in the VM count.
        EXPECT_LE(r, svc.performance(cap).read_bw.value() * nvm + 1e-9);
        prev_r = r;
        prev_w = w;
    }
}

TEST_P(ServiceSweep, PricingConsistency) {
    const auto& svc = service();
    EXPECT_GT(svc.price_per_gb_month().value(), 0.0);
    EXPECT_NEAR(svc.price_per_gb_hour().value() * 730.0, svc.price_per_gb_month().value(),
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllServices, ServiceSweep, ::testing::ValuesIn(kAllTiers),
                         [](const ::testing::TestParamInfo<StorageTier>& info) {
                             return std::string(tier_name(info.param));
                         });

TEST(ObjectStoreIntermediate, ConventionProperties) {
    // Floor at 100 GB, grows with 2x headroom, splits across VMs.
    EXPECT_DOUBLE_EQ(object_store_intermediate_volume(GigaBytes{0.0}, 1).value(), 100.0);
    EXPECT_DOUBLE_EQ(object_store_intermediate_volume(GigaBytes{10.0}, 1).value(), 100.0);
    EXPECT_DOUBLE_EQ(object_store_intermediate_volume(GigaBytes{100.0}, 1).value(), 200.0);
    EXPECT_DOUBLE_EQ(object_store_intermediate_volume(GigaBytes{100.0}, 4).value(), 100.0);
    // Monotone in intermediate size, antitone in worker count.
    double prev = 0.0;
    for (double inter = 0.0; inter <= 500.0; inter += 25.0) {
        const double v = object_store_intermediate_volume(GigaBytes{inter}, 2).value();
        EXPECT_GE(v, prev - 1e-9);
        prev = v;
    }
    for (int nvm = 1; nvm < 16; ++nvm) {
        EXPECT_GE(object_store_intermediate_volume(GigaBytes{400.0}, nvm).value(),
                  object_store_intermediate_volume(GigaBytes{400.0}, nvm + 1).value() - 1e-9);
    }
}

}  // namespace
}  // namespace cast::cloud
