// Parameterized property tests over the model layer: the estimator and
// the profiled model set must behave sanely across the whole input space.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "model/profiler.hpp"
#include "test_support.hpp"

namespace cast::model {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec sized_job(AppKind app, double gb, int maps) {
    return workload::JobSpec{.id = 1,
                             .name = "prop",
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

// ---------------------------------------------------------------------------
// Estimator algebraic properties.
// ---------------------------------------------------------------------------

class EstimatorSweep : public ::testing::TestWithParam<AppKind> {
protected:
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_10_node();
    PhaseBandwidths bw{MBytesPerSec{40.0}, MBytesPerSec{30.0}, MBytesPerSec{25.0}};
};

TEST_P(EstimatorSweep, MonotoneInInputAtFixedChunkSize) {
    const AppKind app = GetParam();
    double prev = 0.0;
    for (int maps : {80, 160, 320, 640}) {
        const double t =
            estimate(cluster, sized_job(app, maps * 0.128, maps), bw).value();
        EXPECT_GT(t, prev) << maps;
        prev = t;
    }
}

TEST_P(EstimatorSweep, InverselyProportionalToBandwidth) {
    const AppKind app = GetParam();
    const auto job = sized_job(app, 64.0, 500);
    const double t1 = estimate(cluster, job, bw).value();
    PhaseBandwidths doubled{MBytesPerSec{bw.map.value() * 2},
                            MBytesPerSec{bw.shuffle.value() * 2},
                            MBytesPerSec{bw.reduce.value() * 2}};
    EXPECT_NEAR(estimate(cluster, job, doubled).value(), t1 / 2.0, 1e-9);
}

TEST_P(EstimatorSweep, BreakdownSumsToTotal) {
    const AppKind app = GetParam();
    const auto job = sized_job(app, 32.0, 250);
    const auto b = estimate_breakdown(cluster, job, bw);
    EXPECT_NEAR(b.total().value(),
                b.map.value() + b.shuffle.value() + b.reduce.value(), 1e-12);
    EXPECT_NEAR(estimate(cluster, job, bw).value(), b.total().value(), 1e-12);
}

TEST_P(EstimatorSweep, WaveBoundaryNeverDecreasesRuntime) {
    const AppKind app = GetParam();
    const int slots = cluster.total_map_slots();
    // Crossing a wave boundary with identical chunk size must not shorten
    // the estimate.
    const auto at_boundary = sized_job(app, slots * 0.128, slots);
    const auto over_boundary = sized_job(app, (slots + 1) * 0.128, slots + 1);
    EXPECT_GE(estimate(cluster, over_boundary, bw).value(),
              estimate(cluster, at_boundary, bw).value() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllApps, EstimatorSweep, ::testing::ValuesIn(workload::kAllApps),
                         [](const ::testing::TestParamInfo<AppKind>& info) {
                             return std::string(workload::app_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Profiled model set properties across (app, tier).
// ---------------------------------------------------------------------------

class ModelSetSweep
    : public ::testing::TestWithParam<std::tuple<AppKind, StorageTier>> {};

TEST_P(ModelSetSweep, ProcessingTimeMonotoneInCapacity) {
    const auto [app, tier] = GetParam();
    const auto& models = testing::small_models();
    const auto job = sized_job(app, 48.0, 375);
    double prev = 1e18;
    for (double cap : {30.0, 100.0, 300.0, 700.0}) {
        const double t = models.processing_time(job, tier, GigaBytes{cap}).value();
        EXPECT_LE(t, prev * 1.02) << cap;  // small spline tolerance
        prev = t;
    }
}

TEST_P(ModelSetSweep, RuntimeScalesLinearlyWithDataAtFixedWaveShape) {
    const auto [app, tier] = GetParam();
    const auto& models = testing::small_models();
    // Doubling data, map tasks AND reduce tasks in whole-wave multiples
    // doubles every Eq. 1 term, so the estimate must double exactly
    // (chunk and partition sizes are unchanged).
    const int mslots = models.cluster().total_map_slots();
    const int rslots = models.cluster().total_reduce_slots();
    auto job_with = [&](int waves) {
        workload::JobSpec j = sized_job(app, mslots * waves * 0.128, mslots * waves);
        j.reduce_tasks = rslots * waves;
        return j;
    };
    const double t_small =
        models.processing_time(job_with(2), tier, GigaBytes{500.0}).value();
    const double t_big = models.processing_time(job_with(4), tier, GigaBytes{500.0}).value();
    EXPECT_NEAR(t_big / t_small, 2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ModelSetSweep,
    ::testing::Combine(::testing::ValuesIn(workload::kAllApps),
                       ::testing::ValuesIn(cloud::kAllTiers)),
    [](const ::testing::TestParamInfo<ModelSetSweep::ParamType>& info) {
        return std::string(workload::app_name(std::get<0>(info.param))) + "_" +
               std::string(cloud::tier_name(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Spline regression fuzz: the Fritsch-Carlson interpolant of any monotone
// random sample stays monotone and within the sample's range.
// ---------------------------------------------------------------------------

class SplineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplineFuzz, MonotoneAndBoundedOnRandomMonotoneData) {
    Rng rng(GetParam());
    const std::size_t n = 3 + rng.below(10);
    std::vector<double> xs;
    std::vector<double> ys;
    double x = rng.uniform(0.0, 10.0);
    double y = rng.uniform(50.0, 100.0);
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(x);
        ys.push_back(y);
        x += rng.uniform(0.5, 20.0);
        y -= rng.uniform(0.0, 15.0);  // non-increasing, like runtime vs capacity
    }
    const CubicHermiteSpline s(xs, ys);
    double prev = s(xs.front());
    for (double q = xs.front(); q <= xs.back(); q += (xs.back() - xs.front()) / 500.0) {
        const double v = s(q);
        EXPECT_LE(v, prev + 1e-9);
        EXPECT_LE(v, ys.front() + 1e-9);
        EXPECT_GE(v, ys.back() - 1e-9);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplineFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace cast::model
