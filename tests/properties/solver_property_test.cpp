// Parameterized property tests over the solvers: invariants that must hold
// for any seed and any workload shape.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "core/castpp.hpp"
#include "test_support.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;
using workload::AppKind;

workload::Workload random_workload(std::uint64_t seed, std::size_t jobs,
                                   double share_fraction = 0.0) {
    Rng rng(seed);
    std::vector<workload::JobSpec> specs;
    const std::size_t group_every =
        share_fraction > 0.0 ? std::max<std::size_t>(2, static_cast<std::size_t>(
                                                            1.0 / share_fraction))
                             : 0;
    int group = 0;
    double group_gb = 0.0;
    AppKind group_app = AppKind::kSort;
    for (std::size_t i = 0; i < jobs; ++i) {
        AppKind app = workload::kAllApps[rng.below(workload::kAllApps.size())];
        double gb = rng.uniform(10.0, 400.0);
        std::optional<int> g;
        if (group_every > 0 && i % group_every <= 1) {
            // Pairs of adjacent jobs share input (recurring jobs).
            if (i % group_every == 0) {
                ++group;
                group_gb = gb;
                group_app = app;
            } else {
                gb = group_gb;
                app = group_app;
            }
            g = group;
        }
        const int maps = std::max(1, static_cast<int>(gb / 0.128));
        specs.push_back(workload::JobSpec{.id = static_cast<int>(i) + 1,
                                          .name = "rand-" + std::to_string(i),
                                          .app = app,
                                          .input = GigaBytes{gb},
                                          .map_tasks = maps,
                                          .reduce_tasks = std::max(1, maps / 4),
                                          .reuse_group = g});
    }
    return workload::Workload(std::move(specs));
}

AnnealingOptions quick_options(std::uint64_t seed) {
    AnnealingOptions o;
    o.iter_max = 2500;
    o.chains = 2;
    o.seed = seed;
    return o;
}

class SolverSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverSeedSweep, AnnealingNeverBelowFeasibleInitial) {
    const auto seed = GetParam();
    const auto w = random_workload(seed, 10);
    PlanEvaluator eval(testing::small_models(), w);
    const TieringPlan init = TieringPlan::uniform(w.size(), StorageTier::kPersistentSsd);
    const double u_init = eval.evaluate(init).utility;
    AnnealingSolver solver(eval, quick_options(seed));
    const auto result = solver.solve(init);
    EXPECT_GE(result.evaluation.utility, u_init - 1e-12);
    EXPECT_TRUE(result.evaluation.feasible);
}

TEST_P(SolverSeedSweep, ResultPlanIsAlwaysFeasibleAndComplete) {
    const auto seed = GetParam();
    const auto w = random_workload(seed, 12);
    PlanEvaluator eval(testing::small_models(), w);
    AnnealingSolver solver(eval, quick_options(seed ^ 0xabcd));
    const auto result =
        solver.solve(TieringPlan::uniform(w.size(), StorageTier::kPersistentHdd));
    EXPECT_EQ(result.plan.size(), w.size());
    const auto re_eval = eval.evaluate(result.plan);
    EXPECT_TRUE(re_eval.feasible);
    EXPECT_NEAR(re_eval.utility, result.evaluation.utility, 1e-12);
}

TEST_P(SolverSeedSweep, ReuseAwareSolverAlwaysSatisfiesEq7) {
    const auto seed = GetParam();
    const auto w = random_workload(seed, 12, /*share_fraction=*/0.35);
    PlanEvaluator eval(testing::small_models(), w, EvalOptions{.reuse_aware = true});
    AnnealingOptions opts = quick_options(seed * 3 + 1);
    opts.group_moves = true;
    AnnealingSolver solver(eval, opts);
    const auto result =
        solver.solve(TieringPlan::uniform(w.size(), StorageTier::kPersistentSsd));
    EXPECT_TRUE(result.plan.respects_reuse_groups(w));
    EXPECT_TRUE(result.evaluation.feasible);
}

TEST_P(SolverSeedSweep, GreedyUtilityNonNegativeAndPlanComplete) {
    const auto seed = GetParam();
    const auto w = random_workload(seed + 500, 8);
    PlanEvaluator eval(testing::small_models(), w);
    GreedySolver greedy(eval);
    const auto plan = greedy.solve();
    EXPECT_EQ(plan.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_GT(greedy.single_job_utility(w.job(i), plan.decision(i).tier,
                                            plan.decision(i).overprovision),
                  0.0)
            << "job " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSeedSweep,
                         ::testing::Values(11u, 23u, 37u, 41u, 59u, 73u));

// ---------------------------------------------------------------------------
// Workflow solver sweeps.
// ---------------------------------------------------------------------------

class WorkflowSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

workload::Workflow random_chain_workflow(std::uint64_t seed, Seconds deadline) {
    Rng rng(seed);
    const int n = 3 + static_cast<int>(rng.below(4));
    std::vector<workload::JobSpec> jobs;
    std::vector<workload::WorkflowEdge> edges;
    for (int i = 0; i < n; ++i) {
        const AppKind app = workload::kAllApps[rng.below(workload::kAllApps.size())];
        const int maps = static_cast<int>(rng.between(100, 400));
        jobs.push_back(workload::JobSpec{.id = i + 1,
                                         .name = "wfrand-" + std::to_string(i),
                                         .app = app,
                                         .input = GigaBytes{maps * 0.128},
                                         .map_tasks = maps,
                                         .reduce_tasks = std::max(1, maps / 4),
                                         .reuse_group = std::nullopt});
        if (i > 0) {
            edges.push_back({.from_job = 1 + static_cast<int>(rng.below(
                                                static_cast<std::uint64_t>(i))),
                             .to_job = i + 1});
        }
    }
    return workload::Workflow("wfrand-" + std::to_string(seed), std::move(jobs),
                              std::move(edges), deadline);
}

TEST_P(WorkflowSeedSweep, GenerousDeadlineAlwaysMet) {
    const auto seed = GetParam();
    const auto wf = random_chain_workflow(seed, Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts = quick_options(seed);
    WorkflowSolver solver(eval, opts);
    const auto result = solver.solve();
    EXPECT_TRUE(result.evaluation.feasible);
    EXPECT_TRUE(result.evaluation.meets_deadline);
}

TEST_P(WorkflowSeedSweep, SolverNeverWorseThanBestUniform) {
    const auto seed = GetParam();
    const auto wf = random_chain_workflow(seed ^ 0x5555, Seconds{1e6});
    WorkflowEvaluator eval(testing::small_models(), wf);
    AnnealingOptions opts = quick_options(seed);
    WorkflowSolver solver(eval, opts);
    const auto result = solver.solve();
    // With an unmissable deadline, score == -cost, so the solver's result
    // must be at least as cheap as every feasible uniform plan at k = 1.
    for (StorageTier t : cloud::kAllTiers) {
        const auto uniform = eval.evaluate(WorkflowPlan::uniform(wf.size(), t));
        if (!uniform.feasible) continue;
        EXPECT_LE(result.evaluation.total_cost().value(),
                  uniform.total_cost().value() + 1e-9)
            << cloud::tier_name(t);
    }
}

TEST_P(WorkflowSeedSweep, ImpossibleDeadlineStillReturnsBestEffort) {
    const auto seed = GetParam();
    const auto wf = random_chain_workflow(seed ^ 0xaaaa, Seconds{1.0});
    WorkflowEvaluator eval(testing::small_models(), wf);
    WorkflowSolver solver(eval, quick_options(seed));
    const auto result = solver.solve();
    EXPECT_TRUE(result.evaluation.feasible);   // a plan exists
    EXPECT_FALSE(result.evaluation.meets_deadline);  // it just cannot meet 1 s
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowSeedSweep, ::testing::Values(3u, 7u, 19u, 31u));

}  // namespace
}  // namespace cast::core
