#include "model/mrcute.hpp"

#include <gtest/gtest.h>

namespace cast::model {
namespace {

using cloud::StorageTier;
using workload::AppKind;
using cast::literals::operator""_MBps;

workload::JobSpec job_with(AppKind app, double input_gb, int maps, int reduces) {
    return workload::JobSpec{.id = 1,
                             .name = "est",
                             .app = app,
                             .input = GigaBytes{input_gb},
                             .map_tasks = maps,
                             .reduce_tasks = reduces,
                             .reuse_group = std::nullopt};
}

PhaseBandwidths uniform_bw(double mbps) {
    return PhaseBandwidths{MBytesPerSec{mbps}, MBytesPerSec{mbps}, MBytesPerSec{mbps}};
}

TEST(WaveCount, CeilingDivision) {
    EXPECT_EQ(wave_count(1, 8), 1);
    EXPECT_EQ(wave_count(8, 8), 1);
    EXPECT_EQ(wave_count(9, 8), 2);
    EXPECT_EQ(wave_count(200, 200), 1);
    EXPECT_EQ(wave_count(3000, 200), 15);
    EXPECT_THROW((void)wave_count(0, 8), PreconditionError);
    EXPECT_THROW((void)wave_count(8, 0), PreconditionError);
}

TEST(Estimate, SingleWaveHandComputed) {
    // 1 worker VM, 8 map slots. 8 maps of 1 GB each at 100 MB/s: one wave
    // of 10 s. Sort: inter == output == input; 2 reduces -> 4 GB each.
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    const auto job = job_with(AppKind::kSort, 8.0, 8, 2);
    const auto est = estimate_breakdown(cluster, job, uniform_bw(100.0));
    EXPECT_NEAR(est.map.value(), 10.0, 1e-9);            // 1000 MB / 100
    EXPECT_NEAR(est.shuffle.value(), 40.0, 1e-9);        // 4000 MB / 100
    EXPECT_NEAR(est.reduce.value(), 40.0, 1e-9);
    EXPECT_NEAR(est.total().value(), 90.0, 1e-9);
}

TEST(Estimate, WaveQuantizationMatters) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    const auto eight = job_with(AppKind::kGrep, 8.0, 8, 1);
    const auto nine = job_with(AppKind::kGrep, 9.0, 9, 1);  // same chunk size
    const auto b8 = estimate_breakdown(cluster, eight, uniform_bw(100.0));
    const auto b9 = estimate_breakdown(cluster, nine, uniform_bw(100.0));
    // 9 tasks on 8 slots -> 2 waves: the map term doubles (chunk size is
    // identical in both jobs).
    EXPECT_NEAR(b9.map.value(), 2.0 * b8.map.value(), 1e-9);
}

TEST(Estimate, IterationsMultiply) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    const auto kmeans = job_with(AppKind::kKMeans, 8.0, 8, 2);
    const auto grep = job_with(AppKind::kGrep, 8.0, 8, 2);
    const auto bw = uniform_bw(100.0);
    const int iters = workload::ApplicationProfile::of(AppKind::kKMeans).iterations();
    // Map term scales exactly with iteration count for equal-sized maps.
    const auto est_k = estimate_breakdown(cluster, kmeans, bw);
    const auto est_g = estimate_breakdown(cluster, grep, bw);
    EXPECT_NEAR(est_k.map.value(), est_g.map.value() * iters, 1e-9);
}

TEST(Estimate, FasterBandwidthShortensEstimate) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_400_core();
    const auto job = job_with(AppKind::kSort, 384.0, 3000, 750);
    const double slow = estimate(cluster, job, uniform_bw(10.0)).value();
    const double fast = estimate(cluster, job, uniform_bw(40.0)).value();
    EXPECT_NEAR(slow / fast, 4.0, 1e-9);
}

TEST(Estimate, ValidatesInputs) {
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    const auto job = job_with(AppKind::kSort, 8.0, 8, 2);
    PhaseBandwidths bad = uniform_bw(100.0);
    bad.shuffle = MBytesPerSec{0.0};
    EXPECT_THROW((void)estimate(cluster, job, bad), PreconditionError);
}

TEST(EstimateStaging, MatchesMinOfEndpoints) {
    const auto catalog = cloud::StorageCatalog::google_cloud();
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    // 10 GB to a 375 GB ephSSD volume: objStore's 265 MB/s is the limit.
    const Seconds t = estimate_staging(cluster, catalog, StorageTier::kEphemeralSsd,
                                       GigaBytes{375.0}, GigaBytes{10.0});
    EXPECT_NEAR(t.value(), 10000.0 / 265.0, 1e-6);
    // To a 100 GB persHDD volume (20 MB/s write): the volume is the limit.
    const Seconds t2 = estimate_staging(cluster, catalog, StorageTier::kPersistentHdd,
                                        GigaBytes{100.0}, GigaBytes{10.0});
    EXPECT_NEAR(t2.value(), 10000.0 / 20.0, 1e-6);
}

TEST(EstimateStaging, ScalesWithClusterSizeUpToBucketCeiling) {
    const auto catalog = cloud::StorageCatalog::google_cloud();
    cloud::ClusterSpec c1 = cloud::ClusterSpec::paper_single_node();
    cloud::ClusterSpec c4 = c1;
    c4.worker_count = 4;
    cloud::ClusterSpec c10 = cloud::ClusterSpec::paper_10_node();
    auto dl = [&](const cloud::ClusterSpec& c) {
        return estimate_staging(c, catalog, StorageTier::kEphemeralSsd, GigaBytes{375.0},
                                GigaBytes{100.0}, StagingDirection::kDownload)
            .value();
    };
    // 4 VMs: 4x the single-VM object-store streams (4 x 265 < 1200 cap).
    EXPECT_NEAR(dl(c1) / dl(c4), 4.0, 1e-9);
    // 10 VMs: capped by the bucket-level 1200 MB/s aggregate read ceiling.
    EXPECT_NEAR(dl(c1) / dl(c10), 1200.0 / 265.0, 1e-9);
    // Uploads hit the (lower) aggregate write ceiling.
    const double ul10 = estimate_staging(c10, catalog, StorageTier::kEphemeralSsd,
                                         GigaBytes{375.0}, GigaBytes{100.0},
                                         StagingDirection::kUpload)
                            .value();
    EXPECT_NEAR(ul10, 100000.0 / 500.0, 1e-6);
}

TEST(EstimateStaging, ZeroVolumeFree) {
    const auto catalog = cloud::StorageCatalog::google_cloud();
    EXPECT_DOUBLE_EQ(estimate_staging(cloud::ClusterSpec::paper_single_node(), catalog,
                                      StorageTier::kPersistentSsd, GigaBytes{100.0},
                                      GigaBytes{0.0})
                         .value(),
                     0.0);
}

}  // namespace
}  // namespace cast::model
