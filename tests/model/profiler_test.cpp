#include "model/profiler.hpp"

#include <gtest/gtest.h>

#include "sim/mapreduce.hpp"
#include "test_support.hpp"

namespace cast::model {
namespace {

using cloud::StorageTier;
using workload::AppKind;

TEST(Profiler, ProducesModelsForEveryPair) {
    const PerfModelSet& models = testing::small_models();
    for (AppKind app : workload::kAllApps) {
        for (StorageTier tier : cloud::kAllTiers) {
            EXPECT_TRUE(models.has_tier_model(app, tier))
                << workload::app_name(app) << "/" << cloud::tier_name(tier);
        }
    }
}

TEST(Profiler, BandwidthsArePositiveAndFinite) {
    const PerfModelSet& models = testing::small_models();
    for (AppKind app : workload::kAllApps) {
        for (StorageTier tier : cloud::kAllTiers) {
            const auto& m = models.tier_model(app, tier);
            EXPECT_GT(m.bandwidths.map.value(), 0.0);
            EXPECT_GT(m.bandwidths.shuffle.value(), 0.0);
            EXPECT_GT(m.bandwidths.reduce.value(), 0.0);
        }
    }
}

TEST(Profiler, IoBoundBandwidthOrderingFollowsTiers) {
    // Grep's map bandwidth must order ephSSD > persSSD > persHDD at the
    // reference capacities (733 vs 234 vs 97 MB/s per VM).
    const PerfModelSet& models = testing::small_models();
    const double eph =
        models.tier_model(AppKind::kGrep, StorageTier::kEphemeralSsd).bandwidths.map.value();
    const double ssd =
        models.tier_model(AppKind::kGrep, StorageTier::kPersistentSsd).bandwidths.map.value();
    const double hdd =
        models.tier_model(AppKind::kGrep, StorageTier::kPersistentHdd).bandwidths.map.value();
    EXPECT_GT(eph, ssd);
    EXPECT_GT(ssd, hdd);
}

TEST(Profiler, CpuBoundBandwidthTierInvariant) {
    // KMeans is compute-bound: per-task map bandwidth is (nearly) the same
    // on persSSD and persHDD.
    const PerfModelSet& models = testing::small_models();
    const double ssd = models.tier_model(AppKind::kKMeans, StorageTier::kPersistentSsd)
                           .bandwidths.map.value();
    const double hdd = models.tier_model(AppKind::kKMeans, StorageTier::kPersistentHdd)
                           .bandwidths.map.value();
    EXPECT_NEAR(ssd / hdd, 1.0, 0.1);
}

TEST(Profiler, AllTiersHaveScalingSplines) {
    const PerfModelSet& models = testing::small_models();
    for (StorageTier t : cloud::kAllTiers) {
        const auto& m = models.tier_model(AppKind::kSort, t);
        EXPECT_FALSE(m.runtime_scale.empty()) << cloud::tier_name(t);
        EXPECT_EQ(m.scales_with_intermediate_volume, t == StorageTier::kObjectStore);
    }
}

TEST(Profiler, ObjectStoreScalesWithIntermediateVolumeForShuffleHeavyApps) {
    // A shuffle-heavy objStore job drains through its conventional persSSD
    // intermediate volume; a bigger volume must mean a faster run.
    const PerfModelSet& models = testing::small_models();
    const auto& sort = models.tier_model(AppKind::kSort, StorageTier::kObjectStore);
    EXPECT_GT(sort.scale_at(GigaBytes{100.0}), 1.2 * sort.scale_at(GigaBytes{500.0}));
    // Grep barely shuffles: nearly flat.
    const auto& grep = models.tier_model(AppKind::kGrep, StorageTier::kObjectStore);
    EXPECT_NEAR(grep.scale_at(GigaBytes{100.0}), grep.scale_at(GigaBytes{500.0}), 0.15);
}

TEST(Profiler, ScaleIsOneAtReferenceCapacity) {
    const PerfModelSet& models = testing::small_models();
    const auto& m = models.tier_model(AppKind::kSort, StorageTier::kPersistentSsd);
    EXPECT_NEAR(m.scale_at(m.reference_capacity_per_vm), 1.0, 0.05);
}

TEST(Profiler, IoBoundScaleDecreasesWithCapacity) {
    // Fig. 2's mechanism: bigger persSSD volumes -> faster Sort, saturating.
    const PerfModelSet& models = testing::small_models();
    const auto& m = models.tier_model(AppKind::kSort, StorageTier::kPersistentSsd);
    const double at100 = m.scale_at(GigaBytes{100.0});
    const double at200 = m.scale_at(GigaBytes{200.0});
    const double at500 = m.scale_at(GigaBytes{500.0});
    const double at1000 = m.scale_at(GigaBytes{1000.0});
    EXPECT_GT(at100, at200);
    EXPECT_GT(at200, at500);
    // Saturation: the 500 -> 1000 gain is much smaller than 100 -> 200.
    EXPECT_LT(at500 - at1000, 0.5 * (at100 - at200));
}

TEST(Profiler, CpuBoundScaleFlatOnceComputeBound) {
    // KMeans saturates its CPUs once the volume is big enough that the
    // per-slot I/O share exceeds its compute rate; beyond that point
    // capacity buys nothing (persHDD reaches that around ~350 GB/VM).
    const PerfModelSet& models = testing::small_models();
    const auto& m = models.tier_model(AppKind::kKMeans, StorageTier::kPersistentHdd);
    EXPECT_NEAR(m.scale_at(GigaBytes{500.0}), m.scale_at(GigaBytes{1000.0}), 0.1);
    // ...while below the threshold, capacity still matters.
    EXPECT_GT(m.scale_at(GigaBytes{60.0}), 1.5 * m.scale_at(GigaBytes{500.0}));
}

TEST(PerfModelSet, ProcessingTimeMatchesScaledEstimate) {
    const PerfModelSet& models = testing::small_models();
    const workload::JobSpec job{.id = 3,
                                .name = "t",
                                .app = AppKind::kGrep,
                                .input = GigaBytes{32.0},
                                .map_tasks = 250,
                                .reduce_tasks = 60,
                                .reuse_group = std::nullopt};
    const auto& m = models.tier_model(AppKind::kGrep, StorageTier::kPersistentSsd);
    const Seconds base = estimate(models.cluster(), job, m.bandwidths);
    const Seconds scaled =
        models.processing_time(job, StorageTier::kPersistentSsd, GigaBytes{200.0});
    EXPECT_NEAR(scaled.value(), base.value() * m.scale_at(GigaBytes{200.0}), 1e-6);
}

TEST(PerfModelSet, EphemeralRuntimeIncludesStaging) {
    const PerfModelSet& models = testing::small_models();
    const workload::JobSpec job{.id = 4,
                                .name = "t",
                                .app = AppKind::kSort,
                                .input = GigaBytes{32.0},
                                .map_tasks = 250,
                                .reduce_tasks = 60,
                                .reuse_group = std::nullopt};
    const GigaBytes cap{375.0};
    const Seconds with =
        models.job_runtime(job, StorageTier::kEphemeralSsd, cap);
    const Seconds without = models.job_runtime(job, StorageTier::kEphemeralSsd, cap,
                                               StagingLegs{false, false});
    EXPECT_GT(with.value(), without.value());
    const Seconds dl = estimate_staging(models.cluster(), models.catalog(),
                                        StorageTier::kEphemeralSsd, cap, job.input,
                                        StagingDirection::kDownload);
    const Seconds ul = estimate_staging(models.cluster(), models.catalog(),
                                        StorageTier::kEphemeralSsd, cap, job.output(),
                                        StagingDirection::kUpload);
    EXPECT_NEAR(with.value() - without.value(), dl.value() + ul.value(), 1e-6);
}

TEST(PerfModelSet, PersistentTiersHaveNoDefaultStaging) {
    const PerfModelSet& models = testing::small_models();
    const workload::JobSpec job{.id = 5,
                                .name = "t",
                                .app = AppKind::kGrep,
                                .input = GigaBytes{16.0},
                                .map_tasks = 125,
                                .reduce_tasks = 30,
                                .reuse_group = std::nullopt};
    for (StorageTier t : {StorageTier::kPersistentSsd, StorageTier::kPersistentHdd,
                          StorageTier::kObjectStore}) {
        const GigaBytes cap{t == StorageTier::kObjectStore ? 0.0 : 500.0};
        EXPECT_NEAR(models.job_runtime(job, t, cap).value(),
                    models.processing_time(job, t, cap).value(), 1e-9)
            << cloud::tier_name(t);
    }
}

TEST(PerfModelSet, MissingModelThrows) {
    PerfModelSet empty(testing::small_cluster(), cloud::StorageCatalog::google_cloud());
    EXPECT_THROW((void)empty.tier_model(AppKind::kSort, StorageTier::kPersistentSsd),
                 PreconditionError);
}

TEST(Profiler, ModelPredictsSimulatorWithin25Percent) {
    // End-to-end sanity of the whole modeling pipeline (the Fig. 8 gap,
    // loosely bounded): REG's prediction for a fresh job must land near
    // the simulator's measurement.
    const PerfModelSet& models = testing::small_models();
    const workload::JobSpec job{.id = 77,
                                .name = "validate",
                                .app = AppKind::kSort,
                                .input = GigaBytes{48.0},
                                .map_tasks = 375,
                                .reduce_tasks = 90,
                                .reuse_group = std::nullopt};
    sim::TierCapacities caps;
    caps.set(StorageTier::kPersistentSsd, GigaBytes{300.0});
    sim::ClusterSim simulator(models.cluster(), models.catalog(), caps,
                              sim::SimOptions{.seed = 99, .jitter_sigma = 0.06});
    const double measured =
        simulator
            .run_job(sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd))
            .makespan.value();
    const double predicted =
        models.job_runtime(job, StorageTier::kPersistentSsd, GigaBytes{300.0}).value();
    EXPECT_NEAR(predicted / measured, 1.0, 0.25);
}

}  // namespace
}  // namespace cast::model
