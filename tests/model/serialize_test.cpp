#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_support.hpp"

namespace cast::model {
namespace {

using cloud::StorageTier;
using workload::AppKind;

TEST(Serialize, RoundTripIsBitExact) {
    const PerfModelSet& original = testing::small_models();
    std::stringstream buffer;
    save_model_set(original, buffer);
    const PerfModelSet loaded = load_model_set(buffer);

    EXPECT_EQ(loaded.cluster().worker_count, original.cluster().worker_count);
    EXPECT_EQ(loaded.cluster().worker.name, original.cluster().worker.name);
    EXPECT_EQ(loaded.catalog().name(), original.catalog().name());
    for (AppKind app : workload::kAllApps) {
        for (StorageTier tier : cloud::kAllTiers) {
            const auto& a = original.tier_model(app, tier);
            const auto& b = loaded.tier_model(app, tier);
            EXPECT_DOUBLE_EQ(a.bandwidths.map.value(), b.bandwidths.map.value());
            EXPECT_DOUBLE_EQ(a.bandwidths.shuffle.value(), b.bandwidths.shuffle.value());
            EXPECT_DOUBLE_EQ(a.bandwidths.reduce.value(), b.bandwidths.reduce.value());
            EXPECT_DOUBLE_EQ(a.reference_capacity_per_vm.value(),
                             b.reference_capacity_per_vm.value());
            EXPECT_EQ(a.scales_with_intermediate_volume, b.scales_with_intermediate_volume);
            ASSERT_EQ(a.runtime_scale.size(), b.runtime_scale.size());
            for (std::size_t i = 0; i < a.runtime_scale.size(); ++i) {
                EXPECT_DOUBLE_EQ(a.runtime_scale.knots_x()[i], b.runtime_scale.knots_x()[i]);
                EXPECT_DOUBLE_EQ(a.runtime_scale.knots_y()[i], b.runtime_scale.knots_y()[i]);
            }
        }
    }
}

TEST(Serialize, RoundTripPreservesPredictions) {
    const PerfModelSet& original = testing::small_models();
    std::stringstream buffer;
    save_model_set(original, buffer);
    const PerfModelSet loaded = load_model_set(buffer);
    const workload::JobSpec job{.id = 1,
                                .name = "rt",
                                .app = AppKind::kSort,
                                .input = GigaBytes{40.0},
                                .map_tasks = 312,
                                .reduce_tasks = 78,
                                .reuse_group = std::nullopt};
    for (StorageTier tier : cloud::kAllTiers) {
        EXPECT_DOUBLE_EQ(original.job_runtime(job, tier, GigaBytes{300.0}).value(),
                         loaded.job_runtime(job, tier, GigaBytes{300.0}).value())
            << cloud::tier_name(tier);
    }
}

TEST(Serialize, SecondSaveIsIdentical) {
    std::stringstream a;
    save_model_set(testing::small_models(), a);
    std::stringstream b;
    save_model_set(load_model_set(a), b);
    // Compare against a fresh serialization of the original.
    std::stringstream a2;
    save_model_set(testing::small_models(), a2);
    EXPECT_EQ(b.str(), a2.str());
}

TEST(Serialize, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/cast_models_test.txt";
    save_model_set_file(testing::small_models(), path);
    const PerfModelSet loaded = load_model_set_file(path);
    EXPECT_EQ(loaded.cluster().worker_count,
              testing::small_models().cluster().worker_count);
    std::remove(path.c_str());
}

TEST(Serialize, FileErrorsThrow) {
    EXPECT_THROW((void)load_model_set_file("/nonexistent/dir/models.txt"), ValidationError);
    EXPECT_THROW(save_model_set_file(testing::small_models(), "/nonexistent/dir/m.txt"),
                 ValidationError);
}

TEST(Serialize, RejectsCorruptInput) {
    auto load_str = [](const std::string& text) {
        std::istringstream is(text);
        return load_model_set(is);
    };
    EXPECT_THROW((void)load_str(""), ValidationError);
    EXPECT_THROW((void)load_str("wrong-magic v1\n"), ValidationError);
    EXPECT_THROW((void)load_str("cast-model-set v99\n"), ValidationError);
    EXPECT_THROW((void)load_str("cast-model-set v1\ncatalog google-cloud\nend\n"),
                 ValidationError);  // missing cluster
    EXPECT_THROW((void)load_str("cast-model-set v1\nbogus-key 1\nend\n"), ValidationError);
}

TEST(Serialize, RejectsTruncatedModels) {
    std::stringstream buffer;
    save_model_set(testing::small_models(), buffer);
    std::string text = buffer.str();
    // Drop the last model line (keep "end").
    const auto end_pos = text.rfind("model ");
    text.erase(end_pos, text.rfind("end") - end_pos);
    std::istringstream is(text);
    EXPECT_THROW((void)load_model_set(is), ValidationError);
}

TEST(Serialize, RejectsUnknownCatalog) {
    std::stringstream buffer;
    save_model_set(testing::small_models(), buffer);
    std::string text = buffer.str();
    const auto pos = text.find("google-cloud");
    text.replace(pos, std::string("google-cloud").size(), "magic-cloud9");
    std::istringstream is(text);
    EXPECT_THROW((void)load_model_set(is), ValidationError);
}

}  // namespace
}  // namespace cast::model
