#!/usr/bin/env python3
"""Unit tests for tools/bench_gate.py's gate decisions and JSON summary.

Each test fabricates a fake bench "binary" (a shell script that writes a
canned BENCH_serve_throughput.json into its cwd, as the real bench does)
plus a baseline file, runs bench_gate.py as a subprocess, and asserts on
the exit code and the one-line BENCH_GATE_SUMMARY JSON record.

Runs under plain unittest (no pytest in the image); registered with ctest
as bench_gate_selftest.
"""

from __future__ import annotations

import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_GATE = REPO_ROOT / "tools" / "bench_gate.py"
SUMMARY_TAG = "BENCH_GATE_SUMMARY"


def make_report(plans_per_sec: float, mode: str = "full",
                host_cores: int = 4) -> dict:
    return {
        "mode": mode,
        "host_cores": host_cores,
        "budget_ms": 0.0,
        "service_runs": [
            {"config": "baseline", "workers": 1, "plans_per_sec": plans_per_sec},
            {"config": "parallel", "workers": host_cores,
             "plans_per_sec": plans_per_sec * 2.0},
        ],
    }


class BenchGateHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="bench_gate_test_")
        self.tmp = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def fake_bench(self, report: dict, exit_code: int = 0) -> Path:
        """A stand-in bench binary: dumps `report` into cwd, then exits."""
        report_path = self.tmp / "canned_report.json"
        report_path.write_text(json.dumps(report))
        script = self.tmp / "fake_bench.sh"
        script.write_text(
            "#!/bin/sh\n"
            f'cp "{report_path}" BENCH_serve_throughput.json\n'
            f"exit {exit_code}\n")
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        return script

    def baseline(self, report: dict) -> Path:
        path = self.tmp / "baseline.json"
        path.write_text(json.dumps(report))
        return path

    def run_gate(self, bench: Path, baseline: Path,
                 *extra: str) -> tuple[subprocess.CompletedProcess, dict]:
        proc = subprocess.run(
            [sys.executable, str(BENCH_GATE), "--bench", str(bench),
             "--baseline", str(baseline), *extra],
            capture_output=True, text=True, check=False)
        lines = [l for l in proc.stdout.splitlines()
                 if l.startswith(SUMMARY_TAG + " ")]
        self.assertEqual(len(lines), 1,
                         f"expected exactly one summary line:\n{proc.stdout}")
        return proc, json.loads(lines[0][len(SUMMARY_TAG) + 1:])


class GateDecisions(BenchGateHarness):
    def test_pass_when_throughput_holds(self):
        bench = self.fake_bench(make_report(100.0))
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")
        by_name = {m["name"]: m for m in summary["metrics"]}
        self.assertEqual(by_name["bench_contracts"]["status"], "pass")
        tput = by_name["service_plans_per_sec"]
        self.assertEqual(tput["status"], "pass")
        self.assertEqual(tput["baseline"], 200.0)  # best run (parallel)
        self.assertEqual(tput["current"], 200.0)
        self.assertEqual(tput["delta"], 0.0)

    def test_fail_on_regression_beyond_threshold(self):
        bench = self.fake_bench(make_report(60.0))   # -40% vs baseline
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base, "--threshold", "0.25")
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(summary["verdict"], "FAIL")
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "fail")
        self.assertAlmostEqual(tput["delta"], -0.4, places=4)
        self.assertEqual(tput["threshold"], 0.25)

    def test_small_regression_within_threshold_passes(self):
        bench = self.fake_bench(make_report(90.0))   # -10%, under 25%
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")

    def test_smoke_skips_throughput_comparison(self):
        bench = self.fake_bench(make_report(1.0, mode="smoke"))
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base, "--smoke")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "skip")
        self.assertEqual(tput["reason"], "smoke run")

    def test_bench_contract_failure_fails_gate(self):
        bench = self.fake_bench(make_report(100.0), exit_code=3)
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(summary["verdict"], "FAIL")
        contracts = {m["name"]: m for m in summary["metrics"]}["bench_contracts"]
        self.assertEqual(contracts["status"], "fail")
        self.assertEqual(contracts["exit_code"], 3)

    def test_core_count_mismatch_compares_single_worker_only(self):
        bench = self.fake_bench(make_report(100.0, host_cores=8))
        base = self.baseline(make_report(100.0, host_cores=4))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "pass")
        self.assertTrue(tput["single_worker_only"])
        self.assertEqual(tput["baseline"], 100.0)  # parallel runs stripped


class SummaryIsMachineReadable(BenchGateHarness):
    def test_summary_is_one_line_valid_json(self):
        bench = self.fake_bench(make_report(100.0))
        base = self.baseline(make_report(100.0))
        _, summary = self.run_gate(bench, base)
        self.assertEqual(set(summary), {"verdict", "metrics"})
        for m in summary["metrics"]:
            self.assertIn("name", m)
            self.assertIn(m["status"], ("pass", "fail", "skip"))


if __name__ == "__main__":
    unittest.main()
