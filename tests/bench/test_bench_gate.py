#!/usr/bin/env python3
"""Unit tests for tools/bench_gate.py's gate decisions and JSON summary.

Each test fabricates a fake bench "binary" (a shell script that writes a
canned BENCH_serve_throughput.json into its cwd, as the real bench does)
plus a baseline file, runs bench_gate.py as a subprocess, and asserts on
the exit code and the one-line BENCH_GATE_SUMMARY JSON record.

Runs under plain unittest (no pytest in the image); registered with ctest
as bench_gate_selftest.
"""

from __future__ import annotations

import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_GATE = REPO_ROOT / "tools" / "bench_gate.py"
SUMMARY_TAG = "BENCH_GATE_SUMMARY"


def make_report(plans_per_sec: float, mode: str = "full",
                host_cores: int = 4) -> dict:
    return {
        "mode": mode,
        "host_cores": host_cores,
        "budget_ms": 0.0,
        "service_runs": [
            {"config": "baseline", "workers": 1, "plans_per_sec": plans_per_sec},
            {"config": "parallel", "workers": host_cores,
             "plans_per_sec": plans_per_sec * 2.0},
        ],
    }


class BenchGateHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="bench_gate_test_")
        self.tmp = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def fake_bench(self, report: dict, exit_code: int = 0) -> Path:
        """A stand-in bench binary: dumps `report` into cwd, then exits."""
        report_path = self.tmp / "canned_report.json"
        report_path.write_text(json.dumps(report))
        script = self.tmp / "fake_bench.sh"
        script.write_text(
            "#!/bin/sh\n"
            f'cp "{report_path}" BENCH_serve_throughput.json\n'
            f"exit {exit_code}\n")
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        return script

    def baseline(self, report: dict) -> Path:
        path = self.tmp / "baseline.json"
        path.write_text(json.dumps(report))
        return path

    def run_gate(self, bench: Path, baseline: Path,
                 *extra: str) -> tuple[subprocess.CompletedProcess, dict]:
        proc = subprocess.run(
            [sys.executable, str(BENCH_GATE), "--bench", str(bench),
             "--baseline", str(baseline), *extra],
            capture_output=True, text=True, check=False)
        lines = [l for l in proc.stdout.splitlines()
                 if l.startswith(SUMMARY_TAG + " ")]
        self.assertEqual(len(lines), 1,
                         f"expected exactly one summary line:\n{proc.stdout}")
        return proc, json.loads(lines[0][len(SUMMARY_TAG) + 1:])

    def commit_history(self, reports: list) -> Path:
        """Fabricate a git repo whose baseline file went through `reports`
        (one commit each; a str report is committed verbatim — used to
        prove unparseable revisions are skipped). Returns the baseline
        path at HEAD."""
        repo = self.tmp / "repo"
        repo.mkdir()
        subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
        baseline = repo / "BENCH_serve_throughput.json"
        for i, report in enumerate(reports):
            if isinstance(report, str):
                baseline.write_text(report)
            else:
                # Salt with the commit index so flat histories still change
                # the file (an unchanged file would make an empty commit).
                baseline.write_text(json.dumps({**report, "commit_index": i}))
            subprocess.run(["git", "add", "-A"], cwd=repo, check=True)
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@t",
                 "commit", "-q", "-m", f"point {i}"],
                cwd=repo, check=True)
        return baseline

    def run_trend(self, baseline: Path,
                  *extra: str) -> tuple[subprocess.CompletedProcess, dict]:
        proc = subprocess.run(
            [sys.executable, str(BENCH_GATE), "--trend",
             "--baseline", str(baseline), *extra],
            capture_output=True, text=True, check=False)
        lines = [l for l in proc.stdout.splitlines()
                 if l.startswith(SUMMARY_TAG + " ")]
        self.assertEqual(len(lines), 1,
                         f"expected exactly one summary line:\n{proc.stdout}")
        return proc, json.loads(lines[0][len(SUMMARY_TAG) + 1:])


class GateDecisions(BenchGateHarness):
    def test_pass_when_throughput_holds(self):
        bench = self.fake_bench(make_report(100.0))
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")
        by_name = {m["name"]: m for m in summary["metrics"]}
        self.assertEqual(by_name["bench_contracts"]["status"], "pass")
        tput = by_name["service_plans_per_sec"]
        self.assertEqual(tput["status"], "pass")
        self.assertEqual(tput["baseline"], 200.0)  # best run (parallel)
        self.assertEqual(tput["current"], 200.0)
        self.assertEqual(tput["delta"], 0.0)

    def test_fail_on_regression_beyond_threshold(self):
        bench = self.fake_bench(make_report(60.0))   # -40% vs baseline
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base, "--threshold", "0.25")
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(summary["verdict"], "FAIL")
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "fail")
        self.assertAlmostEqual(tput["delta"], -0.4, places=4)
        self.assertEqual(tput["threshold"], 0.25)

    def test_small_regression_within_threshold_passes(self):
        bench = self.fake_bench(make_report(90.0))   # -10%, under 25%
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")

    def test_smoke_skips_throughput_comparison(self):
        bench = self.fake_bench(make_report(1.0, mode="smoke"))
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base, "--smoke")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(summary["verdict"], "OK")
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "skip")
        self.assertEqual(tput["reason"], "smoke run")

    def test_bench_contract_failure_fails_gate(self):
        bench = self.fake_bench(make_report(100.0), exit_code=3)
        base = self.baseline(make_report(100.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(summary["verdict"], "FAIL")
        contracts = {m["name"]: m for m in summary["metrics"]}["bench_contracts"]
        self.assertEqual(contracts["status"], "fail")
        self.assertEqual(contracts["exit_code"], 3)

    def test_core_count_mismatch_compares_single_worker_only(self):
        bench = self.fake_bench(make_report(100.0, host_cores=8))
        base = self.baseline(make_report(100.0, host_cores=4))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        tput = {m["name"]: m for m in summary["metrics"]}["service_plans_per_sec"]
        self.assertEqual(tput["status"], "pass")
        self.assertTrue(tput["single_worker_only"])
        self.assertEqual(tput["baseline"], 100.0)  # parallel runs stripped


class TrendGate(BenchGateHarness):
    """--trend gates on the committed git history of the baseline file."""

    def test_flat_history_passes_both_gates(self):
        baseline = self.commit_history([make_report(100.0)] * 6)
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        by_name = {m["name"]: m for m in summary["metrics"]}
        self.assertEqual(by_name["trend_window"]["status"], "pass")
        self.assertEqual(by_name["trend_slope"]["status"], "pass")

    def test_cliff_regression_fails_window_gate(self):
        baseline = self.commit_history(
            [make_report(v) for v in (100.0, 100.0, 100.0, 100.0, 100.0, 60.0)])
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(summary["verdict"], "FAIL")
        window = {m["name"]: m for m in summary["metrics"]}["trend_window"]
        self.assertEqual(window["status"], "fail")
        self.assertEqual(window["baseline"], 200.0)  # mean of the flat 100s x2
        self.assertEqual(window["current"], 120.0)

    def test_boiling_frog_drift_fails_slope_gate_only(self):
        # Each step is well inside the 25% window gate, but the cumulative
        # decay over the window exceeds threshold/window per commit — the
        # exact drift the slope gate exists to catch.
        baseline = self.commit_history(
            [make_report(v) for v in (100.0, 92.0, 85.0, 78.0, 72.0, 66.0)])
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 1)
        by_name = {m["name"]: m for m in summary["metrics"]}
        self.assertEqual(by_name["trend_window"]["status"], "pass")
        self.assertEqual(by_name["trend_slope"]["status"], "fail")
        self.assertLess(by_name["trend_slope"]["slope_per_commit"], -0.05)

    def test_insufficient_history_is_a_skip(self):
        baseline = self.commit_history([make_report(100.0)] * 2)
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        trend = {m["name"]: m for m in summary["metrics"]}["trend"]
        self.assertEqual(trend["status"], "skip")
        self.assertEqual(trend["points"], 2)

    def test_foreign_core_counts_and_garbage_revisions_are_filtered(self):
        # Three old points from an 8-core host plus one truncated revision
        # must not poison the 4-core trend (which is flat -> OK).
        history = ([make_report(500.0, host_cores=8)] * 3 +
                   ["{this is not json"] +
                   [make_report(100.0, host_cores=4)] * 3)
        baseline = self.commit_history(history)
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(summary["verdict"], "OK")

    def test_outside_git_tree_fails_loudly(self):
        lonely = self.tmp / "nogit" / "BENCH_serve_throughput.json"
        lonely.parent.mkdir()
        lonely.write_text(json.dumps(make_report(100.0)))
        env = dict(os.environ)
        env["GIT_CEILING_DIRECTORIES"] = str(self.tmp)
        proc = subprocess.run(
            [sys.executable, str(BENCH_GATE), "--trend",
             "--baseline", str(lonely)],
            capture_output=True, text=True, check=False, env=env)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("trend_history", proc.stdout)

    def test_bench_flag_not_required_in_trend_mode(self):
        baseline = self.commit_history([make_report(100.0)] * 3)
        proc, _ = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


def make_incremental_report(amend_pps: float, mode: str = "full",
                            host_cores: int = 4) -> dict:
    """An incremental_replan-shaped report: three single-threaded tracks,
    amend fastest, cold slowest (the ratios mirror the real bench)."""
    return {
        "mode": mode,
        "host_cores": host_cores,
        "cold_resolve": {"plans_per_sec": amend_pps / 6.0, "mean_utility": 0.0002},
        "incremental_amend": {"plans_per_sec": amend_pps, "mean_utility": 0.0002},
        "secretary_baseline": {"plans_per_sec": amend_pps * 3.0,
                               "mean_utility": 0.00018},
    }


class IncrementalReportGate(BenchGateHarness):
    """incremental_replan reports gate per-track plans_per_sec rows."""

    def test_gates_each_track(self):
        bench = self.fake_bench(make_incremental_report(60.0))
        base = self.baseline(make_incremental_report(60.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        by_name = {m["name"]: m for m in summary["metrics"]}
        for track in ("cold_resolve", "incremental_amend", "secretary_baseline"):
            row = by_name[f"{track}.plans_per_sec"]
            self.assertEqual(row["status"], "pass")
        self.assertEqual(by_name["incremental_amend.plans_per_sec"]["baseline"], 60.0)

    def test_one_regressed_track_fails_the_gate(self):
        fresh = make_incremental_report(60.0)
        fresh["incremental_amend"]["plans_per_sec"] = 30.0  # -50%
        bench = self.fake_bench(fresh)
        base = self.baseline(make_incremental_report(60.0))
        proc, summary = self.run_gate(bench, base)
        self.assertEqual(proc.returncode, 1)
        by_name = {m["name"]: m for m in summary["metrics"]}
        self.assertEqual(by_name["incremental_amend.plans_per_sec"]["status"], "fail")
        self.assertEqual(by_name["cold_resolve.plans_per_sec"]["status"], "pass")

    def test_trend_mode_suffixes_per_track_metrics(self):
        cliff = make_incremental_report(60.0)
        cliff["incremental_amend"]["plans_per_sec"] = 30.0
        baseline = self.commit_history([make_incremental_report(60.0)] * 5 + [cliff])
        proc, summary = self.run_trend(baseline)
        self.assertEqual(proc.returncode, 1)
        by_name = {m["name"]: m for m in summary["metrics"]}
        amend = by_name["trend_window.incremental_amend.plans_per_sec"]
        self.assertEqual(amend["status"], "fail")
        cold = by_name["trend_window.cold_resolve.plans_per_sec"]
        self.assertEqual(cold["status"], "pass")


class SummaryIsMachineReadable(BenchGateHarness):
    def test_summary_is_one_line_valid_json(self):
        bench = self.fake_bench(make_report(100.0))
        base = self.baseline(make_report(100.0))
        _, summary = self.run_gate(bench, base)
        self.assertEqual(set(summary), {"verdict", "metrics"})
        for m in summary["metrics"]:
            self.assertIn("name", m)
            self.assertIn(m["status"], ("pass", "fail", "skip"))


if __name__ == "__main__":
    unittest.main()
