// Regression tests for the bench helpers' reporting bugs fixed in this
// PR: percentile() of an empty sample is NaN (0.0 read as "instant",
// which poisoned all-shed sweep points), and write_bench_json fails
// loudly when the baseline file cannot be written (a silent drop left
// bench_gate comparing against stale numbers).
#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace cast::bench {
namespace {

TEST(Percentile, EmptySampleIsNaNNotZero) {
    const double p = percentile({}, 50.0);
    EXPECT_TRUE(std::isnan(p));
    EXPECT_TRUE(std::isnan(percentile({}, 0.0)));
    EXPECT_TRUE(std::isnan(percentile({}, 100.0)));
}

TEST(Percentile, SingleSampleIsThatSampleAtEveryP) {
    EXPECT_EQ(percentile({42.0}, 0.0), 42.0);
    EXPECT_EQ(percentile({42.0}, 50.0), 42.0);
    EXPECT_EQ(percentile({42.0}, 100.0), 42.0);
}

TEST(Percentile, InterpolatesLinearlyOverUnsortedInput) {
    const std::vector<double> values{40.0, 10.0, 30.0, 20.0};  // sorted: 10..40
    EXPECT_EQ(percentile(values, 0.0), 10.0);
    EXPECT_EQ(percentile(values, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 25.0);   // between 20 and 30
    EXPECT_DOUBLE_EQ(percentile(values, 25.0), 17.5);   // between 10 and 20
}

TEST(WriteBenchJson, RoundTripsThroughTheNamedFile) {
    JsonObject doc;
    doc.add("bench", "unit");
    doc.add("value", 1.5, 3);
    const std::string path = ::testing::TempDir() + "bench_util_test_out.json";
    write_bench_json(path, doc);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"bench\": \"unit\""), std::string::npos);
    EXPECT_NE(text.find("\"value\": 1.500"), std::string::npos);
    std::remove(path.c_str());
}

TEST(WriteBenchJson, ThrowsNamingThePathWhenUnwritable) {
    JsonObject doc;
    doc.add("bench", "unit");
    const std::string bad = "/nonexistent-dir-for-bench-util-test/out.json";
    try {
        write_bench_json(bad, doc);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
            << "error must name the path: " << e.what();
    }
}

}  // namespace
}  // namespace cast::bench
