// MetricsRegistry contract tests: relaxed-atomic instruments, stable
// references across re-registration, bucket-interpolated quantiles with
// NaN-on-empty, pull gauges evaluated outside the registry mutex, and the
// JSON/table exporters (sorted names, omitted empty-histogram quantiles,
// null for non-finite gauges).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace cast::obs {
namespace {

TEST(Counter, AccumulatesAcrossThreads) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.add();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    c.add(5);
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread + 5);
}

TEST(Gauge, HoldsLastWrittenValue) {
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.25);
    EXPECT_EQ(g.value(), 3.25);
    g.set(-1.0);
    EXPECT_EQ(g.value(), -1.0);
}

TEST(Histogram, RejectsBadBounds) {
    EXPECT_THROW(Histogram(std::vector<double>{}), PreconditionError);
    EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), PreconditionError);
    EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), PreconditionError);
}

TEST(Histogram, EmptyHasNaNQuantilesAndZeroTotals) {
    Histogram h(Histogram::default_latency_buckets_ms());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(Histogram, CountsSumAndBucketsTrackObservations) {
    Histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);    // bucket 0 (<= 1)
    h.observe(1.0);    // bucket 0 (boundary counts down)
    h.observe(5.0);    // bucket 1
    h.observe(50.0);   // bucket 2
    h.observe(500.0);  // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 556.5);
    const auto buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucketAndClampsOverflow) {
    Histogram h({10.0, 20.0});
    for (int i = 0; i < 100; ++i) h.observe(15.0);  // all in (10, 20]
    // Every sample lives in the second bucket: any quantile lands inside
    // [10, 20], monotone in q.
    const double p50 = h.quantile(0.5);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p99, 20.0);
    EXPECT_LE(p50, p99);

    Histogram over({1.0, 2.0});
    over.observe(1000.0);
    // Overflow bucket has no upper edge; the estimate clamps to the top
    // finite bound instead of inventing +inf.
    EXPECT_EQ(over.quantile(0.99), 2.0);
}

TEST(Histogram, DefaultLatencyBucketsAreStrictlyIncreasing) {
    const auto bounds = Histogram::default_latency_buckets_ms();
    ASSERT_GE(bounds.size(), 5u);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

TEST(MetricsRegistry, RegistrationReturnsStableReferences) {
    MetricsRegistry reg;
    Counter& c1 = reg.counter("requests");
    Counter& c2 = reg.counter("requests");
    EXPECT_EQ(&c1, &c2);  // same name -> same instrument
    c1.add(3);
    EXPECT_EQ(reg.counter_value("requests"), 3u);
    EXPECT_TRUE(reg.has_counter("requests"));
    EXPECT_FALSE(reg.has_counter("absent"));

    Gauge& g1 = reg.gauge("depth");
    Gauge& g2 = reg.gauge("depth");
    EXPECT_EQ(&g1, &g2);
    g1.set(4.0);
    EXPECT_EQ(reg.gauge_value("depth"), 4.0);

    Histogram& h1 = reg.histogram("lat", {1.0, 2.0});
    Histogram& h2 = reg.histogram("lat", {5.0, 6.0, 7.0});
    EXPECT_EQ(&h1, &h2);  // bounds fixed by first registration
    EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, PullGaugeEvaluatesAtExportTime) {
    MetricsRegistry reg;
    double live = 1.0;
    reg.gauge_fn("live", [&live] { return live; });
    EXPECT_EQ(reg.gauge_value("live"), 1.0);
    live = 7.5;
    EXPECT_EQ(reg.gauge_value("live"), 7.5);

    // A pull callback may itself touch the registry (it runs outside the
    // registry mutex) — this must not deadlock.
    reg.gauge_fn("reentrant", [&reg] {
        return static_cast<double>(reg.counter_value("absent"));
    });
    EXPECT_EQ(reg.gauge_value("reentrant"), 0.0);
    std::ostringstream os;
    reg.write_json(os);  // export path evaluates every callback
    EXPECT_NE(os.str().find("\"reentrant\""), std::string::npos);
}

TEST(MetricsRegistry, JsonIsOneLineSortedAndOmitsEmptyQuantiles) {
    MetricsRegistry reg;
    reg.counter("b.count").add(2);
    reg.counter("a.count").add(1);
    reg.gauge("depth").set(3.0);
    reg.histogram("empty_hist");
    Histogram& h = reg.histogram("lat", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);

    const std::string doc = reg.json();
    EXPECT_EQ(doc.find('\n'), std::string::npos);  // one line
    // Counters sort lexicographically.
    EXPECT_LT(doc.find("\"a.count\""), doc.find("\"b.count\""));
    // Empty histogram keeps its count but omits sum/p50/p95/p99 — NaN is
    // not a JSON token.
    const auto empty_pos = doc.find("\"empty_hist\"");
    ASSERT_NE(empty_pos, std::string::npos);
    const auto empty_obj = doc.substr(empty_pos, doc.find('}', empty_pos) - empty_pos);
    EXPECT_NE(empty_obj.find("\"count\":0"), std::string::npos);
    EXPECT_EQ(empty_obj.find("p50"), std::string::npos);
    EXPECT_EQ(empty_obj.find("nan"), std::string::npos);
    // Populated histogram carries the quantile fields.
    const auto lat_pos = doc.find("\"lat\"");
    const auto lat_obj = doc.substr(lat_pos, doc.find('}', lat_pos) - lat_pos);
    EXPECT_NE(lat_obj.find("\"count\":2"), std::string::npos);
    EXPECT_NE(lat_obj.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, NonFiniteGaugeExportsAsNull) {
    MetricsRegistry reg;
    reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
    const std::string doc = reg.json();
    EXPECT_NE(doc.find("\"bad\":null"), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(MetricsRegistry, PullGaugeShadowsPushGaugeOfSameName) {
    MetricsRegistry reg;
    reg.gauge("depth").set(1.0);
    reg.gauge_fn("depth", [] { return 9.0; });
    EXPECT_EQ(reg.gauge_value("depth"), 9.0);
    const std::string doc = reg.json();
    EXPECT_NE(doc.find("\"depth\":9"), std::string::npos);
}

TEST(MetricsRegistry, TableRendersAllInstrumentKinds) {
    MetricsRegistry reg;
    reg.counter("serve.requests.submitted").add(4);
    reg.gauge("serve.queue.depth").set(2.0);
    reg.histogram("serve.latency_ms.normal").observe(3.0);
    reg.histogram("serve.latency_ms.empty");
    std::ostringstream os;
    reg.write_table(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("serve.requests.submitted"), std::string::npos);
    EXPECT_NE(text.find("serve.queue.depth"), std::string::npos);
    EXPECT_NE(text.find("serve.latency_ms.normal"), std::string::npos);
    // Empty histogram rows print "-" placeholders, never "nan".
    EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdatesAreSafe) {
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            // All threads race registration of the same names; the registry
            // must hand every one the same instrument.
            Counter& c = reg.counter("shared.count");
            Histogram& h = reg.histogram("shared.lat", {1.0, 10.0, 100.0});
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(static_cast<double>(i % 20));
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.counter_value("shared.count"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(reg.histogram("shared.lat").count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace cast::obs
