// TraceRing contract tests: capacity-0 disablement, bounded ring
// semantics (oldest-first snapshots, overwrite once full), monotonic
// timestamps, and the text timeline renderer.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace cast::obs {
namespace {

TraceSpan mk_span(std::uint64_t id, const std::string& outcome = "ok") {
    TraceSpan span;
    span.id = id;
    span.label = "normal";
    span.outcome = outcome;
    span.events = {{"admit", 1.0, ""},
                   {"dequeue", 2.0, ""},
                   {"respond", 5.0, outcome}};
    return span;
}

TEST(TraceRing, CapacityZeroIsDisabledNoOp) {
    TraceRing ring(0);
    EXPECT_FALSE(ring.enabled());
    EXPECT_EQ(ring.capacity(), 0u);
    ring.push(mk_span(1));
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.total_pushed(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
    // Disabled rings still serve timestamps (callers stamp events before
    // deciding whether a ring will keep the span).
    EXPECT_GE(ring.now_ms(), 0.0);
}

TEST(TraceRing, SpanDurationDerivesFromEvents) {
    const TraceSpan span = mk_span(7);
    EXPECT_EQ(span.start_ms(), 1.0);
    EXPECT_EQ(span.end_ms(), 5.0);
    EXPECT_EQ(span.duration_ms(), 4.0);
    const TraceSpan empty;
    EXPECT_EQ(empty.duration_ms(), 0.0);
}

TEST(TraceRing, KeepsInsertionOrderBelowCapacity) {
    TraceRing ring(8);
    EXPECT_TRUE(ring.enabled());
    for (std::uint64_t id = 1; id <= 5; ++id) ring.push(mk_span(id));
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.total_pushed(), 5u);
    const auto spans = ring.snapshot();
    ASSERT_EQ(spans.size(), 5u);
    for (std::uint64_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].id, i + 1);  // oldest first
    }
}

TEST(TraceRing, OverwritesOldestOnceFull) {
    TraceRing ring(4);
    for (std::uint64_t id = 1; id <= 10; ++id) ring.push(mk_span(id));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.total_pushed(), 10u);
    const auto spans = ring.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // The last `capacity` spans survive, oldest first: 7, 8, 9, 10.
    for (std::uint64_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].id, 7 + i);
    }
}

TEST(TraceRing, TimestampsAreMonotonic) {
    TraceRing ring(2);
    const double t0 = ring.now_ms();
    const auto tp = std::chrono::steady_clock::now();
    const double t1 = ring.at_ms(tp);
    const double t2 = ring.now_ms();
    EXPECT_GE(t0, 0.0);
    EXPECT_GE(t1, t0);
    EXPECT_GE(t2, t1);
}

TEST(TraceRing, ConcurrentPushesLoseNothing) {
    TraceRing ring(1024);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 100;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&ring, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ring.push(mk_span(static_cast<std::uint64_t>(t * kPerThread + i)));
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(ring.total_pushed(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TraceRing, TableListsEveryEventRow) {
    TraceRing ring(4);
    ring.push(mk_span(1));
    ring.push(mk_span(2, "rejected"));
    std::ostringstream os;
    ring.write_table(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("admit"), std::string::npos);
    EXPECT_NE(text.find("respond"), std::string::npos);
    EXPECT_NE(text.find("rejected"), std::string::npos);

    TraceRing empty(4);
    std::ostringstream os2;
    empty.write_table(os2);
    EXPECT_NE(os2.str().find("no trace spans"), std::string::npos);
}

}  // namespace
}  // namespace cast::obs
