// Shared fixtures for model/core/integration tests.
//
// Profiling a full M̂ + REG model set runs hundreds of simulations; tests
// share one memoized campaign per cluster size instead of re-profiling.
#pragma once

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "model/profiler.hpp"

namespace cast::testing {

/// A small 5-worker cluster: big enough for multi-wave behaviour, cheap
/// enough to profile in tests.
inline const cloud::ClusterSpec& small_cluster() {
    static const cloud::ClusterSpec kCluster = [] {
        cloud::ClusterSpec c = cloud::ClusterSpec::paper_single_node();
        c.worker_count = 5;
        return c;
    }();
    return kCluster;
}

/// Memoized profiled model set on the small cluster.
inline const model::PerfModelSet& small_models() {
    static const model::PerfModelSet kModels = [] {
        model::ProfilerOptions opts;
        opts.runs_per_point = 2;
        opts.block_capacity_points = {15.0, 30.0, 60.0, 100.0, 200.0, 350.0, 500.0, 750.0,
                                      1000.0};
        model::Profiler profiler(small_cluster(), cloud::StorageCatalog::google_cloud(),
                                 opts);
        return profiler.profile();
    }();
    return kModels;
}

/// Memoized profiled model set on the paper's 400-core cluster (used by the
/// integration tests that re-check published claims).
inline const model::PerfModelSet& paper_models() {
    static const model::PerfModelSet kModels = [] {
        model::ProfilerOptions opts;
        opts.runs_per_point = 2;
        model::Profiler profiler(cloud::ClusterSpec::paper_400_core(),
                                 cloud::StorageCatalog::google_cloud(), opts);
        return profiler.profile();
    }();
    return kModels;
}

}  // namespace cast::testing
