#include "cloud/storage.hpp"

#include <gtest/gtest.h>

namespace cast::cloud {
namespace {

using cast::literals::operator""_GB;

class StorageCatalogTest : public ::testing::Test {
protected:
    StorageCatalog catalog = StorageCatalog::google_cloud();
};

TEST_F(StorageCatalogTest, TierNamesMatchPaperSpelling) {
    EXPECT_EQ(tier_name(StorageTier::kEphemeralSsd), "ephSSD");
    EXPECT_EQ(tier_name(StorageTier::kPersistentSsd), "persSSD");
    EXPECT_EQ(tier_name(StorageTier::kPersistentHdd), "persHDD");
    EXPECT_EQ(tier_name(StorageTier::kObjectStore), "objStore");
}

TEST_F(StorageCatalogTest, TierFromNameRoundTrip) {
    for (StorageTier t : kAllTiers) {
        EXPECT_EQ(tier_from_name(tier_name(t)), t);
    }
    EXPECT_FALSE(tier_from_name("EPHSSD").has_value());
    EXPECT_FALSE(tier_from_name("").has_value());
}

TEST_F(StorageCatalogTest, Table1PricesPerGbMonth) {
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kEphemeralSsd).price_per_gb_month().value(),
                     0.218);
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kPersistentSsd).price_per_gb_month().value(),
                     0.17);
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kPersistentHdd).price_per_gb_month().value(),
                     0.04);
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kObjectStore).price_per_gb_month().value(),
                     0.026);
}

TEST_F(StorageCatalogTest, HourlyPriceIsMonthlyOver730) {
    for (StorageTier t : kAllTiers) {
        const auto& s = catalog.service(t);
        EXPECT_NEAR(s.price_per_gb_hour().value(), s.price_per_gb_month().value() / 730.0,
                    1e-12);
    }
}

TEST_F(StorageCatalogTest, PersistenceFlags) {
    EXPECT_FALSE(catalog.service(StorageTier::kEphemeralSsd).persistent());
    EXPECT_TRUE(catalog.service(StorageTier::kPersistentSsd).persistent());
    EXPECT_TRUE(catalog.service(StorageTier::kPersistentHdd).persistent());
    EXPECT_TRUE(catalog.service(StorageTier::kObjectStore).persistent());
}

// --- ephSSD: fixed 375 GB volumes, max 4 per VM (Table 1).

TEST_F(StorageCatalogTest, EphSsdProvisionsWholeVolumes) {
    const auto& eph = catalog.service(StorageTier::kEphemeralSsd);
    EXPECT_DOUBLE_EQ(eph.provision(1.0_GB).value(), 375.0);
    EXPECT_DOUBLE_EQ(eph.provision(375.0_GB).value(), 375.0);
    EXPECT_DOUBLE_EQ(eph.provision(376.0_GB).value(), 750.0);
    EXPECT_DOUBLE_EQ(eph.provision(1500.0_GB).value(), 1500.0);
}

TEST_F(StorageCatalogTest, EphSsdRejectsMoreThanFourVolumes) {
    const auto& eph = catalog.service(StorageTier::kEphemeralSsd);
    EXPECT_THROW((void)eph.provision(1501.0_GB), ValidationError);
    EXPECT_EQ(eph.max_capacity_per_vm()->value(), 1500.0);
}

TEST_F(StorageCatalogTest, EphSsdBandwidthScalesWithVolumes) {
    const auto& eph = catalog.service(StorageTier::kEphemeralSsd);
    EXPECT_DOUBLE_EQ(eph.performance(375.0_GB).read_bw.value(), 733.0);
    EXPECT_DOUBLE_EQ(eph.performance(750.0_GB).read_bw.value(), 2 * 733.0);
    EXPECT_DOUBLE_EQ(eph.performance(1500.0_GB).read_bw.value(), 4 * 733.0);
    EXPECT_DOUBLE_EQ(eph.performance(375.0_GB).iops.value(), 100000.0);
}

// --- persSSD / persHDD: Table 1 sample points reproduced exactly.

TEST_F(StorageCatalogTest, PersSsdMatchesTable1Samples) {
    const auto& s = catalog.service(StorageTier::kPersistentSsd);
    EXPECT_NEAR(s.performance(100.0_GB).read_bw.value(), 48.0, 1e-9);
    EXPECT_NEAR(s.performance(250.0_GB).read_bw.value(), 118.0, 1e-9);
    EXPECT_NEAR(s.performance(500.0_GB).read_bw.value(), 234.0, 1e-9);
    EXPECT_NEAR(s.performance(100.0_GB).iops.value(), 3000.0, 1e-9);
    EXPECT_NEAR(s.performance(250.0_GB).iops.value(), 7500.0, 1e-9);
    EXPECT_NEAR(s.performance(500.0_GB).iops.value(), 15000.0, 1e-9);
}

TEST_F(StorageCatalogTest, PersHddMatchesTable1Samples) {
    const auto& s = catalog.service(StorageTier::kPersistentHdd);
    EXPECT_NEAR(s.performance(100.0_GB).read_bw.value(), 20.0, 1e-9);
    EXPECT_NEAR(s.performance(250.0_GB).read_bw.value(), 45.0, 1e-9);
    EXPECT_NEAR(s.performance(500.0_GB).read_bw.value(), 97.0, 1e-9);
    EXPECT_NEAR(s.performance(500.0_GB).iops.value(), 750.0, 1e-9);
}

TEST_F(StorageCatalogTest, PersistentBandwidthMonotoneInCapacity) {
    for (StorageTier t : {StorageTier::kPersistentSsd, StorageTier::kPersistentHdd}) {
        const auto& s = catalog.service(t);
        double prev = 0.0;
        for (double c = 10.0; c <= 3000.0; c += 10.0) {
            const double bw = s.performance(GigaBytes{c}).read_bw.value();
            EXPECT_GE(bw, prev - 1e-9) << tier_name(t) << " at " << c;
            prev = bw;
        }
    }
}

TEST_F(StorageCatalogTest, PersistentBandwidthCeilingHolds) {
    const auto& ssd = catalog.service(StorageTier::kPersistentSsd);
    EXPECT_LE(ssd.performance(GigaBytes{10240.0}).read_bw.value(), 250.0 + 1e-9);
    const auto& hdd = catalog.service(StorageTier::kPersistentHdd);
    EXPECT_LE(hdd.performance(GigaBytes{10240.0}).read_bw.value(), 180.0 + 1e-9);
}

TEST_F(StorageCatalogTest, PersistentProvisionRoundsUpWholeGbWithFloor) {
    const auto& s = catalog.service(StorageTier::kPersistentSsd);
    EXPECT_DOUBLE_EQ(s.provision(0.5_GB).value(), 10.0);   // provider minimum
    EXPECT_DOUBLE_EQ(s.provision(99.2_GB).value(), 100.0); // whole GB
    EXPECT_DOUBLE_EQ(s.provision(500.0_GB).value(), 500.0);
}

TEST_F(StorageCatalogTest, PersistentVolumeLimitEnforced) {
    for (StorageTier t : {StorageTier::kPersistentSsd, StorageTier::kPersistentHdd}) {
        const auto& s = catalog.service(t);
        EXPECT_NO_THROW((void)s.provision(GigaBytes{10240.0}));
        EXPECT_THROW((void)s.provision(GigaBytes{10241.0}), ValidationError);
        EXPECT_DOUBLE_EQ(s.max_capacity_per_vm()->value(), 10240.0);
    }
}

// --- objStore: unlimited, flat performance, request overhead.

TEST_F(StorageCatalogTest, ObjectStoreIsUnlimitedAndFlat) {
    const auto& s = catalog.service(StorageTier::kObjectStore);
    EXPECT_FALSE(s.max_capacity_per_vm().has_value());
    EXPECT_DOUBLE_EQ(s.provision(GigaBytes{123456.0}).value(), 123456.0);
    EXPECT_DOUBLE_EQ(s.performance(1.0_GB).read_bw.value(), 265.0);
    EXPECT_DOUBLE_EQ(s.performance(GigaBytes{1e6}).read_bw.value(), 265.0);
    EXPECT_DOUBLE_EQ(s.performance(1.0_GB).iops.value(), 550.0);
}

TEST_F(StorageCatalogTest, OnlyObjectStoreHasRequestOverhead) {
    EXPECT_GT(catalog.service(StorageTier::kObjectStore).request_overhead().value(), 0.0);
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kEphemeralSsd).request_overhead().value(),
                     0.0);
    EXPECT_DOUBLE_EQ(catalog.service(StorageTier::kPersistentSsd).request_overhead().value(),
                     0.0);
}

TEST_F(StorageCatalogTest, NegativeProvisionRejected) {
    for (StorageTier t : kAllTiers) {
        EXPECT_THROW((void)catalog.service(t).provision(GigaBytes{-1.0}), PreconditionError);
    }
}

TEST_F(StorageCatalogTest, ConventionTiers) {
    EXPECT_EQ(catalog.backing_store(), StorageTier::kObjectStore);
    EXPECT_EQ(catalog.object_store_intermediate_tier(), StorageTier::kPersistentSsd);
}

}  // namespace
}  // namespace cast::cloud
