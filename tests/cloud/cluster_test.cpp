#include "cloud/cluster.hpp"

#include <gtest/gtest.h>

namespace cast::cloud {
namespace {

TEST(MachineType, PaperFlavours) {
    const MachineType m16 = MachineType::n1_standard_16();
    EXPECT_EQ(m16.name, "n1-standard-16");
    EXPECT_EQ(m16.vcpus, 16);
    EXPECT_DOUBLE_EQ(m16.memory_gb, 60.0);
    EXPECT_EQ(m16.map_slots, 8);
    EXPECT_EQ(m16.reduce_slots, 8);

    const MachineType m4 = MachineType::n1_standard_4();
    EXPECT_EQ(m4.vcpus, 4);
    EXPECT_DOUBLE_EQ(m4.memory_gb, 15.0);
}

TEST(MachineType, PricePerMinute) {
    const MachineType m = MachineType::n1_standard_16();
    EXPECT_NEAR(m.price_per_minute().value(), 0.836 / 60.0, 1e-12);
}

TEST(MachineType, ValidationRejectsNonsense) {
    MachineType m = MachineType::n1_standard_16();
    m.map_slots = 0;
    EXPECT_THROW(m.validate(), PreconditionError);
    m = MachineType::n1_standard_16();
    m.vcpus = -1;
    EXPECT_THROW(m.validate(), PreconditionError);
}

TEST(ClusterSpec, Paper400CoreHas25Workers) {
    const ClusterSpec c = ClusterSpec::paper_400_core();
    EXPECT_EQ(c.worker_count, 25);
    EXPECT_EQ(c.total_worker_vcpus(), 400);
    EXPECT_EQ(c.total_map_slots(), 200);
    EXPECT_EQ(c.total_reduce_slots(), 200);
}

TEST(ClusterSpec, SingleNodeAndTenNode) {
    EXPECT_EQ(ClusterSpec::paper_single_node().worker_count, 1);
    EXPECT_EQ(ClusterSpec::paper_10_node().worker_count, 10);
}

TEST(ClusterSpec, PricePerMinuteIncludesMaster) {
    const ClusterSpec c = ClusterSpec::paper_400_core();
    const double expected = (25 * 0.836 + 0.209) / 60.0;
    EXPECT_NEAR(c.price_per_minute().value(), expected, 1e-12);
}

TEST(ClusterSpec, ValidationRejectsZeroWorkers) {
    ClusterSpec c = ClusterSpec::paper_single_node();
    c.worker_count = 0;
    EXPECT_THROW(c.validate(), PreconditionError);
}

}  // namespace
}  // namespace cast::cloud
