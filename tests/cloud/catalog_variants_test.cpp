// Tests for the catalog factory variants: the planner is provider-agnostic
// and any catalog must satisfy the same structural contract.
#include <gtest/gtest.h>

#include "cloud/storage.hpp"

namespace cast::cloud {
namespace {

TEST(CatalogVariants, ByNameResolvesBothCatalogs) {
    EXPECT_EQ(StorageCatalog::by_name("google-cloud").name(), "google-cloud");
    EXPECT_EQ(StorageCatalog::by_name("aws-like").name(), "aws-like");
    EXPECT_THROW((void)StorageCatalog::by_name("azure"), ValidationError);
    EXPECT_THROW((void)StorageCatalog::by_name(""), ValidationError);
}

TEST(CatalogVariants, FactoriesStampTheirNames) {
    EXPECT_EQ(StorageCatalog::google_cloud().name(), "google-cloud");
    EXPECT_EQ(StorageCatalog::aws_like().name(), "aws-like");
}

TEST(CatalogVariants, AwsInstanceStoreRules) {
    const auto catalog = StorageCatalog::aws_like();
    const auto& eph = catalog.service(StorageTier::kEphemeralSsd);
    EXPECT_FALSE(eph.persistent());
    // i2-style: 800 GB volumes, at most 2 per VM.
    EXPECT_DOUBLE_EQ(eph.provision(GigaBytes{10.0}).value(), 800.0);
    EXPECT_DOUBLE_EQ(eph.provision(GigaBytes{801.0}).value(), 1600.0);
    EXPECT_THROW((void)eph.provision(GigaBytes{1601.0}), ValidationError);
    EXPECT_DOUBLE_EQ(eph.performance(GigaBytes{1600.0}).read_bw.value(), 800.0);
}

TEST(CatalogVariants, AwsGp2ScalesWithCapacityUpToCeiling) {
    const auto catalog = StorageCatalog::aws_like();
    const auto& gp2 = catalog.service(StorageTier::kPersistentSsd);
    EXPECT_NEAR(gp2.performance(GigaBytes{100.0}).read_bw.value(), 31.0, 1e-9);
    EXPECT_NEAR(gp2.performance(GigaBytes{500.0}).read_bw.value(), 156.0, 1e-9);
    EXPECT_LE(gp2.performance(GigaBytes{16384.0}).read_bw.value(), 160.0 + 1e-9);
    // gp2: 3 IOPS per GB shape.
    EXPECT_NEAR(gp2.performance(GigaBytes{500.0}).iops.value(), 1500.0, 1e-9);
}

TEST(CatalogVariants, AwsMagneticVolumeLimit) {
    const auto catalog = StorageCatalog::aws_like();
    const auto& mag = catalog.service(StorageTier::kPersistentHdd);
    EXPECT_NO_THROW((void)mag.provision(GigaBytes{1024.0}));
    EXPECT_THROW((void)mag.provision(GigaBytes{1025.0}), ValidationError);
}

TEST(CatalogVariants, AwsS3AggregateCeilings) {
    const auto catalog = StorageCatalog::aws_like();
    const auto& s3 = catalog.service(StorageTier::kObjectStore);
    EXPECT_FALSE(s3.max_capacity_per_vm().has_value());
    EXPECT_DOUBLE_EQ(s3.cluster_read_bw(GigaBytes{0.0}, 1).value(), 180.0);
    EXPECT_DOUBLE_EQ(s3.cluster_read_bw(GigaBytes{0.0}, 50).value(), 1000.0);
    EXPECT_DOUBLE_EQ(s3.cluster_write_bw(GigaBytes{0.0}, 50).value(), 400.0);
    EXPECT_GT(s3.request_overhead().value(), 0.0);
}

TEST(CatalogVariants, RelativePriceOrderingHoldsInBothClouds) {
    // The economic structure CAST exploits: ephemeral premium > persistent
    // SSD > persistent HDD > object storage.
    for (const auto& catalog :
         {StorageCatalog::google_cloud(), StorageCatalog::aws_like()}) {
        const double eph =
            catalog.service(StorageTier::kEphemeralSsd).price_per_gb_month().value();
        const double ssd =
            catalog.service(StorageTier::kPersistentSsd).price_per_gb_month().value();
        const double hdd =
            catalog.service(StorageTier::kPersistentHdd).price_per_gb_month().value();
        const double obj =
            catalog.service(StorageTier::kObjectStore).price_per_gb_month().value();
        EXPECT_GT(eph, ssd) << catalog.name();
        EXPECT_GT(ssd, hdd) << catalog.name();
        EXPECT_GT(hdd, obj) << catalog.name();
    }
}

}  // namespace
}  // namespace cast::cloud
