// ServeFaultProfile / ServeFaultInjector contract tests: the zero profile
// injects nothing, every sampled fault plan is a pure function of
// (profile, request id, attempt), and transient vs poisoned requests are
// distinguishable exactly the way the retry wrapper and breaker rely on.
#include "serve/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace cast::serve {
namespace {

TEST(ServeFaultProfile, ZeroProfileIsDisabledAndValid) {
    const ServeFaultProfile none = ServeFaultProfile::none();
    none.validate();
    EXPECT_FALSE(none.enabled());

    ServeFaultInjector injector(none);
    EXPECT_FALSE(injector.enabled());
    for (std::uint64_t id = 1; id <= 64; ++id) {
        for (int attempt = 0; attempt < 3; ++attempt) {
            const AttemptFault fault = injector.on_attempt(id, attempt);
            EXPECT_EQ(fault.stall_ms, 0.0);
            EXPECT_FALSE(fault.throw_exception);
        }
    }
    EXPECT_FALSE(injector.stats().any());
}

TEST(ServeFaultProfile, ValidateRejectsNonsense) {
    ServeFaultProfile p;
    p.stall_prob = 1.5;
    EXPECT_THROW(p.validate(), PreconditionError);
    p = {};
    p.stall_min_ms = 5.0;
    p.stall_max_ms = 1.0;
    EXPECT_THROW(p.validate(), PreconditionError);
    p = {};
    p.exception_prob = -0.1;
    EXPECT_THROW(p.validate(), PreconditionError);
    p = {};
    p.max_failed_attempts = -1;
    EXPECT_THROW(p.validate(), PreconditionError);
    p = {};
    p.flood_factor = 0.0;
    EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(ServeFaultProfile, ScaledSweepIsValidMonotoneAndSeedDeterministic) {
    ServeFaultProfile prev = ServeFaultProfile::scaled(0.0, 7);
    prev.validate();
    EXPECT_FALSE(prev.enabled());  // intensity 0 must be the zero profile
    EXPECT_EQ(prev.flood_factor, 1.0);

    for (const double intensity : {0.25, 0.5, 0.75, 1.0}) {
        const ServeFaultProfile p = ServeFaultProfile::scaled(intensity, 7);
        p.validate();
        EXPECT_TRUE(p.enabled());
        EXPECT_GE(p.stall_prob, prev.stall_prob);
        EXPECT_GE(p.exception_prob, prev.exception_prob);
        EXPECT_GE(p.flood_factor, prev.flood_factor);
        EXPECT_GE(p.swap_storm_swaps, prev.swap_storm_swaps);
        prev = p;
    }

    EXPECT_THROW((void)ServeFaultProfile::scaled(1.5, 7), PreconditionError);
    EXPECT_THROW((void)ServeFaultProfile::scaled(-0.1, 7), PreconditionError);
}

// The determinism contract the bit-identity tests lean on: the fault plan
// for (request, attempt) must not depend on the order injectors are asked,
// on which injector instance asks, or on how many other requests exist.
TEST(ServeFaultInjector, FaultPlanIsPureFunctionOfRequestAndAttempt) {
    const ServeFaultProfile profile = ServeFaultProfile::scaled(1.0, 1234);

    ServeFaultInjector forward(profile);
    ServeFaultInjector backward(profile);

    constexpr std::uint64_t kRequests = 200;
    constexpr int kAttempts = 3;
    std::vector<AttemptFault> a(kRequests * kAttempts);
    std::vector<AttemptFault> b(kRequests * kAttempts);

    for (std::uint64_t id = 0; id < kRequests; ++id) {
        for (int attempt = 0; attempt < kAttempts; ++attempt) {
            a[id * kAttempts + static_cast<std::uint64_t>(attempt)] =
                forward.on_attempt(id + 1, attempt);
        }
    }
    for (std::uint64_t id = kRequests; id-- > 0;) {
        for (int attempt = kAttempts; attempt-- > 0;) {
            b[id * kAttempts + static_cast<std::uint64_t>(attempt)] =
                backward.on_attempt(id + 1, attempt);
        }
    }

    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stall_ms, b[i].stall_ms) << "slot " << i;
        EXPECT_EQ(a[i].throw_exception, b[i].throw_exception) << "slot " << i;
    }
    // Identical queries in a different order produce identical aggregate
    // counters too.
    EXPECT_EQ(forward.stats().stalls, backward.stats().stalls);
    EXPECT_EQ(forward.stats().injected_exceptions,
              backward.stats().injected_exceptions);
    // At intensity 1 over 200 requests, both fault classes must have fired.
    EXPECT_GT(forward.stats().stalls, 0u);
    EXPECT_GT(forward.stats().injected_exceptions, 0u);
}

TEST(ServeFaultInjector, ConcurrentSamplingMatchesSerialSampling) {
    const ServeFaultProfile profile = ServeFaultProfile::scaled(0.8, 99);
    constexpr std::uint64_t kRequests = 256;

    ServeFaultInjector serial(profile);
    std::vector<char> serial_throws(kRequests);
    for (std::uint64_t id = 0; id < kRequests; ++id) {
        serial_throws[id] = serial.on_attempt(id + 1, 0).throw_exception ? 1 : 0;
    }

    ServeFaultInjector concurrent(profile);
    std::vector<char> concurrent_throws(kRequests);
    std::vector<std::thread> threads;
    constexpr int kThreads = 4;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t id = static_cast<std::uint64_t>(t); id < kRequests;
                 id += kThreads) {
                concurrent_throws[id] =
                    concurrent.on_attempt(id + 1, 0).throw_exception ? 1 : 0;
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(serial_throws, concurrent_throws);
    EXPECT_EQ(serial.stats().stalls, concurrent.stats().stalls);
    EXPECT_EQ(serial.stats().injected_exceptions,
              concurrent.stats().injected_exceptions);
}

// Transient vs poisoned is what separates the retry wrapper's job from the
// circuit breaker's: a transient request recovers within
// max_failed_attempts extra tries; a poisoned one never does.
TEST(ServeFaultInjector, TransientRequestsRecoverPoisonedOnesNeverDo) {
    ServeFaultProfile transient;
    transient.seed = 42;
    transient.exception_prob = 1.0;  // every request marked
    transient.max_failed_attempts = 2;
    ServeFaultInjector transient_injector(transient);

    for (std::uint64_t id = 1; id <= 50; ++id) {
        int failed = 0;
        int attempt = 0;
        while (transient_injector.on_attempt(id, attempt).throw_exception) {
            ++failed;
            ++attempt;
            ASSERT_LE(failed, transient.max_failed_attempts) << "request " << id;
        }
        EXPECT_GE(failed, 1) << "request " << id;  // marked: first try fails
        // Recovery is stable: later attempts keep succeeding.
        EXPECT_FALSE(transient_injector.on_attempt(id, attempt + 1).throw_exception);
    }

    ServeFaultProfile poisoned = transient;
    poisoned.max_failed_attempts = 0;  // fails forever
    ServeFaultInjector poisoned_injector(poisoned);
    for (std::uint64_t id = 1; id <= 10; ++id) {
        for (int attempt = 0; attempt < 8; ++attempt) {
            EXPECT_TRUE(poisoned_injector.on_attempt(id, attempt).throw_exception)
                << "request " << id << " attempt " << attempt;
        }
    }
}

TEST(ServeFaultInjector, StallsHitTheFirstAttemptOnlyAndAreCounted) {
    ServeFaultProfile profile;
    profile.seed = 5;
    profile.stall_prob = 1.0;
    profile.stall_min_ms = 2.0;
    profile.stall_max_ms = 4.0;
    ServeFaultInjector injector(profile);

    double total_ms = 0.0;
    constexpr std::uint64_t kRequests = 20;
    for (std::uint64_t id = 1; id <= kRequests; ++id) {
        const AttemptFault first = injector.on_attempt(id, 0);
        EXPECT_GE(first.stall_ms, profile.stall_min_ms);
        EXPECT_LE(first.stall_ms, profile.stall_max_ms);
        total_ms += first.stall_ms;
        // Retries of a stalled request do not stall again — the stall models
        // a wedged worker, not a flaky solve.
        EXPECT_EQ(injector.on_attempt(id, 1).stall_ms, 0.0);
    }

    const ServeFaultStats stats = injector.stats();
    EXPECT_TRUE(stats.any());
    EXPECT_EQ(stats.stalls, kRequests);
    // stall_ms is summed in integer microseconds; allow that truncation.
    EXPECT_NEAR(stats.stall_ms, total_ms, 0.001 * static_cast<double>(kRequests));
}

}  // namespace
}  // namespace cast::serve
