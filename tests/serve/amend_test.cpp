// Amend requests through the PlannerService: the plan store (batch
// handle= writes, amend advances), bit-identity to the direct
// IncrementalSolver, line-of-duty error paths, the governor's greedy rung
// mapping, and the solver.incremental.* instruments mirroring ServiceStats.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "serve/snapshot.hpp"
#include "test_support.hpp"

namespace cast::serve {
namespace {

using workload::AppKind;
using workload::JobDelta;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4)};
}

workload::Workload workload_a() {
    return workload::Workload({mk_job(1, AppKind::kSort, 200.0),
                               mk_job(2, AppKind::kGrep, 150.0),
                               mk_job(3, AppKind::kJoin, 120.0)});
}

SnapshotPtr fresh_snapshot() { return make_snapshot(testing::small_models()); }

ServiceOptions fast_options(std::size_t workers) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.solver.annealing.iter_max = 150;
    opts.solver.annealing.chains = 2;
    opts.amend.min_iters = 150;
    opts.amend.max_iters = 600;
    return opts;
}

PlanRequest batch_request(std::uint64_t id, const std::string& handle) {
    PlanRequest req;
    req.id = id;
    req.workload = workload_a();
    req.seed = 7;
    req.plan_handle = handle;
    return req;
}

PlanRequest amend_request(std::uint64_t id, const std::string& handle, JobDelta delta) {
    PlanRequest req;
    req.id = id;
    req.kind = RequestKind::kAmend;
    req.plan_handle = handle;
    req.seed = 7;
    req.delta = std::move(delta);
    return req;
}

JobDelta arrival_delta() {
    JobDelta delta;
    delta.arrivals = {mk_job(10, AppKind::kKMeans, 96.0)};
    delta.departures = {2};
    return delta;
}

void expect_same_plan(const core::TieringPlan& a, const core::TieringPlan& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.decision(i).tier, b.decision(i).tier) << "job " << i;
        EXPECT_EQ(a.decision(i).overprovision, b.decision(i).overprovision) << "job " << i;
    }
}

TEST(AmendService, BatchHandleStoresSolvedPlan) {
    PlannerService service(fresh_snapshot(), fast_options(2));
    const PlanResponse resp = service.submit(batch_request(1, "live")).get();
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp.batch.has_value());

    const auto stored = service.stored_plan("live");
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(stored->workload.size(), workload_a().size());
    EXPECT_FALSE(stored->reuse_aware);
    expect_same_plan(stored->plan, resp.batch->plan);
    EXPECT_FALSE(service.stored_plan("nope").has_value());
}

TEST(AmendService, AmendMatchesDirectIncrementalSolverAndAdvancesStore) {
    const ServiceOptions opts = fast_options(2);
    PlannerService service(fresh_snapshot(), opts);
    const PlanResponse solved = service.submit(batch_request(1, "live")).get();
    ASSERT_TRUE(solved.ok());

    const PlanResponse amended =
        service.submit(amend_request(2, "live", arrival_delta())).get();
    ASSERT_TRUE(amended.ok());
    EXPECT_EQ(amended.kind, RequestKind::kAmend);
    ASSERT_TRUE(amended.batch.has_value());
    EXPECT_GT(amended.neighborhood_size, 0u);

    // Ground truth: the same amend computed directly. The service's warm
    // snapshot cache is bit-transparent, so a fresh solve must agree.
    core::CastOptions solver_opts = opts.solver;
    solver_opts.annealing.seed = 7;
    const core::IncrementalSolver direct(testing::small_models(), solver_opts, opts.amend);
    const core::AmendResult want =
        direct.amend(workload_a(), solved.batch->plan, arrival_delta());
    expect_same_plan(amended.batch->plan, want.plan);
    EXPECT_EQ(amended.batch->evaluation.utility, want.evaluation.utility);
    EXPECT_EQ(amended.neighborhood_size, want.neighborhood.size());
    EXPECT_EQ(amended.escalated_cold, want.escalated_cold);

    // The store advanced: the stored workload is now the post-delta set and
    // the stored plan is the amended plan.
    const auto stored = service.stored_plan("live");
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(stored->workload.size(), want.workload.size());
    EXPECT_EQ(stored->workload.job(stored->workload.size() - 1).id, 10);
    expect_same_plan(stored->plan, want.plan);
}

TEST(AmendService, SequentialAmendsChainOnOneHandle) {
    PlannerService service(fresh_snapshot(), fast_options(2));
    ASSERT_TRUE(service.submit(batch_request(1, "live")).get().ok());

    JobDelta first;
    first.arrivals = {mk_job(10, AppKind::kKMeans, 96.0)};
    JobDelta second;
    second.departures = {1};
    second.arrivals = {mk_job(11, AppKind::kSort, 64.0)};

    ASSERT_TRUE(service.submit(amend_request(2, "live", first)).get().ok());
    ASSERT_TRUE(service.submit(amend_request(3, "live", second)).get().ok());

    const auto stored = service.stored_plan("live");
    ASSERT_TRUE(stored.has_value());
    // ids 1 departs; 2, 3 survive; 10 and 11 arrived.
    ASSERT_EQ(stored->workload.size(), 4u);
    EXPECT_EQ(stored->workload.job(0).id, 2);
    EXPECT_EQ(stored->workload.job(1).id, 3);
    EXPECT_EQ(stored->workload.job(2).id, 10);
    EXPECT_EQ(stored->workload.job(3).id, 11);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.amend_requests, 2u);
}

TEST(AmendService, UnknownHandleAndMissingDeltaAreErrors) {
    PlannerService service(fresh_snapshot(), fast_options(1));
    const PlanResponse ghost =
        service.submit(amend_request(1, "ghost", arrival_delta())).get();
    EXPECT_EQ(ghost.status, ResponseStatus::kError);
    EXPECT_NE(ghost.error.find("ghost"), std::string::npos);

    PlanRequest no_delta;
    no_delta.id = 2;
    no_delta.kind = RequestKind::kAmend;
    no_delta.plan_handle = "live";
    const PlanResponse missing = service.submit(no_delta).get();
    EXPECT_EQ(missing.status, ResponseStatus::kError);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.errors, 2u);
}

TEST(AmendService, SolveDirectRejectsAmends) {
    const SnapshotPtr snap = fresh_snapshot();
    const PlanRequest req = amend_request(1, "live", arrival_delta());
    EXPECT_THROW((void)PlannerService::solve_direct(*snap, req, fast_options(1)),
                 PreconditionError);
}

TEST(AmendService, ForcedEscalationCountsInStats) {
    ServiceOptions opts = fast_options(1);
    opts.amend.escalate_below = 10.0;  // no amend can reach 10x the shadow
    PlannerService service(fresh_snapshot(), opts);
    ASSERT_TRUE(service.submit(batch_request(1, "live")).get().ok());
    const PlanResponse amended =
        service.submit(amend_request(2, "live", arrival_delta())).get();
    ASSERT_TRUE(amended.ok());
    EXPECT_TRUE(amended.escalated_cold);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.amend_requests, 1u);
    EXPECT_EQ(stats.amend_escalations, 1u);
}

TEST(AmendService, MetricsMirrorAmendCounters) {
    ServiceOptions opts = fast_options(2);
    opts.obs.metrics = true;
    PlannerService service(fresh_snapshot(), opts);
    ASSERT_TRUE(service.submit(batch_request(1, "live")).get().ok());
    ASSERT_TRUE(service.submit(amend_request(2, "live", arrival_delta())).get().ok());
    JobDelta next;
    next.arrivals = {mk_job(11, AppKind::kGrep, 48.0)};
    ASSERT_TRUE(service.submit(amend_request(3, "live", next)).get().ok());

    const ServiceStats stats = service.stats();
    const obs::MetricsRegistry& reg = service.metrics();
    EXPECT_EQ(stats.amend_requests, 2u);
    EXPECT_EQ(reg.counter_value("solver.incremental.amends"), stats.amend_requests);
    EXPECT_EQ(reg.counter_value("solver.incremental.escalations"),
              stats.amend_escalations);
    EXPECT_EQ(reg.counter_value("solver.incremental.greedy_amends"), stats.amend_greedy);
    // One neighborhood-size observation per amend; the cache-hit-rate gauge
    // carries the last amend's EvalCache reading.
    EXPECT_EQ(reg.histogram_count("solver.incremental.neighborhood_jobs"),
              stats.amend_requests);
    EXPECT_GE(reg.gauge_value("solver.incremental.amend_cache_hit_rate"), 0.0);
    EXPECT_LE(reg.gauge_value("solver.incremental.amend_cache_hit_rate"), 1.0);
}

TEST(AmendService, AmendsNeverCoalesceEvenWhenIdentical) {
    ServiceOptions opts = fast_options(1);
    opts.max_batch = 8;  // both amends land in one dispatch window
    PlannerService service(fresh_snapshot(), opts);
    ASSERT_TRUE(service.submit(batch_request(1, "live")).get().ok());

    // Two amends with identical content: the first applies (arrival id 10),
    // the second must NOT be served the first's bits — it re-runs against
    // the advanced store and fails (id 10 now lives there).
    std::future<PlanResponse> f1 = service.submit(amend_request(2, "live", arrival_delta()));
    std::future<PlanResponse> f2 = service.submit(amend_request(3, "live", arrival_delta()));
    const PlanResponse r1 = f1.get();
    const PlanResponse r2 = f2.get();
    const bool first_ok = r1.ok();
    const bool second_ok = r2.ok();
    EXPECT_TRUE(first_ok || second_ok);
    EXPECT_FALSE(first_ok && second_ok);  // duplicate id rejected on replay
    EXPECT_FALSE(r1.coalesced);
    EXPECT_FALSE(r2.coalesced);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.coalesced, 0u);
}

}  // namespace
}  // namespace cast::serve
