#include "serve/request_spec.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"

namespace cast::serve {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory; specs referenced by request files are
/// written next to them so relative-path resolution is exercised for real.
class RequestSpecTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("cast_request_spec_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string write(const std::string& name, const std::string& text) const {
        const fs::path p = dir_ / name;
        std::ofstream os(p);
        os << text;
        return p.string();
    }

    fs::path dir_;
};

constexpr const char* kBatchSpec = "job 1 Sort 120\njob 2 Grep 300\n";
constexpr const char* kWorkflowSpec =
    "workflow etl deadline-min=600\n"
    "job 1 Sort 60\n"
    "job 2 Grep 60\n"
    "edge 1 2\n";

TEST_F(RequestSpecTest, ParsesOptionsAndAssignsSequentialIds) {
    write("w.spec", kBatchSpec);
    const std::string path = write("r.txt",
                                   "# replay file\n"
                                   "request w.spec seed=7 priority=high budget-ms=12.5\n"
                                   "\n"
                                   "request w.spec reuse-aware  # trailing comment\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 2u);

    EXPECT_EQ(requests[0].id, 1u);
    EXPECT_EQ(requests[0].kind, RequestKind::kBatch);
    ASSERT_TRUE(requests[0].workload.has_value());
    EXPECT_EQ(requests[0].workload->size(), 2u);
    EXPECT_EQ(requests[0].seed, 7u);
    EXPECT_EQ(requests[0].priority, Priority::kHigh);
    EXPECT_EQ(requests[0].max_wall_ms, 12.5);
    EXPECT_FALSE(requests[0].reuse_aware);

    EXPECT_EQ(requests[1].id, 2u);
    EXPECT_TRUE(requests[1].reuse_aware);
    EXPECT_EQ(requests[1].priority, Priority::kNormal);
    EXPECT_FALSE(requests[1].seed.has_value());
    EXPECT_EQ(requests[1].max_wall_ms, 0.0);
}

TEST_F(RequestSpecTest, RepeatExpandsCopiesWithFreshIds) {
    write("w.spec", kBatchSpec);
    const std::string path = write("r.txt", "request w.spec seed=3 repeat=3\nrequest w.spec\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 4u);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, i + 1);
    }
    EXPECT_EQ(requests[0].seed, requests[2].seed);
    EXPECT_FALSE(requests[3].seed.has_value());
}

TEST_F(RequestSpecTest, WorkflowSpecsBecomeWorkflowRequests) {
    write("wf.spec", kWorkflowSpec);
    const std::string path = write("r.txt", "request wf.spec priority=low\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].kind, RequestKind::kWorkflow);
    ASSERT_TRUE(requests[0].workflow.has_value());
    EXPECT_EQ(requests[0].workflow->size(), 2u);
    EXPECT_EQ(requests[0].priority, Priority::kLow);
}

TEST_F(RequestSpecTest, RejectsMalformedInput) {
    write("w.spec", kBatchSpec);
    write("wf.spec", kWorkflowSpec);

    EXPECT_THROW((void)load_requests((dir_ / "missing.txt").string()), ValidationError);
    EXPECT_THROW((void)load_requests(write("a.txt", "reqest w.spec\n")), ValidationError);
    EXPECT_THROW((void)load_requests(write("b.txt", "request\n")), ValidationError);
    EXPECT_THROW((void)load_requests(write("c.txt", "request nope.spec\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("d.txt", "request w.spec frobnicate=1\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("e.txt", "request w.spec repeat=0\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("f.txt", "request w.spec budget-ms=-4\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("g.txt", "request w.spec priority=urgent\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("h.txt", "request wf.spec reuse-aware\n")),
                 ValidationError);
}

}  // namespace
}  // namespace cast::serve
