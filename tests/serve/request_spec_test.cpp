#include "serve/request_spec.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"

namespace cast::serve {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory; specs referenced by request files are
/// written next to them so relative-path resolution is exercised for real.
class RequestSpecTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("cast_request_spec_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string write(const std::string& name, const std::string& text) const {
        const fs::path p = dir_ / name;
        std::ofstream os(p);
        os << text;
        return p.string();
    }

    fs::path dir_;
};

constexpr const char* kBatchSpec = "job 1 Sort 120\njob 2 Grep 300\n";
constexpr const char* kWorkflowSpec =
    "workflow etl deadline-min=600\n"
    "job 1 Sort 60\n"
    "job 2 Grep 60\n"
    "edge 1 2\n";

TEST_F(RequestSpecTest, ParsesOptionsAndAssignsSequentialIds) {
    write("w.spec", kBatchSpec);
    const std::string path = write("r.txt",
                                   "# replay file\n"
                                   "request w.spec seed=7 priority=high budget-ms=12.5\n"
                                   "\n"
                                   "request w.spec reuse-aware  # trailing comment\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 2u);

    EXPECT_EQ(requests[0].id, 1u);
    EXPECT_EQ(requests[0].kind, RequestKind::kBatch);
    ASSERT_TRUE(requests[0].workload.has_value());
    EXPECT_EQ(requests[0].workload->size(), 2u);
    EXPECT_EQ(requests[0].seed, 7u);
    EXPECT_EQ(requests[0].priority, Priority::kHigh);
    EXPECT_EQ(requests[0].max_wall_ms, 12.5);
    EXPECT_FALSE(requests[0].reuse_aware);

    EXPECT_EQ(requests[1].id, 2u);
    EXPECT_TRUE(requests[1].reuse_aware);
    EXPECT_EQ(requests[1].priority, Priority::kNormal);
    EXPECT_FALSE(requests[1].seed.has_value());
    EXPECT_EQ(requests[1].max_wall_ms, 0.0);
}

TEST_F(RequestSpecTest, RepeatExpandsCopiesWithFreshIds) {
    write("w.spec", kBatchSpec);
    const std::string path = write("r.txt", "request w.spec seed=3 repeat=3\nrequest w.spec\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 4u);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, i + 1);
    }
    EXPECT_EQ(requests[0].seed, requests[2].seed);
    EXPECT_FALSE(requests[3].seed.has_value());
}

TEST_F(RequestSpecTest, WorkflowSpecsBecomeWorkflowRequests) {
    write("wf.spec", kWorkflowSpec);
    const std::string path = write("r.txt", "request wf.spec priority=low\n");
    const auto requests = load_requests(path);
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].kind, RequestKind::kWorkflow);
    ASSERT_TRUE(requests[0].workflow.has_value());
    EXPECT_EQ(requests[0].workflow->size(), 2u);
    EXPECT_EQ(requests[0].priority, Priority::kLow);
}

TEST_F(RequestSpecTest, RejectsMalformedInput) {
    write("w.spec", kBatchSpec);
    write("wf.spec", kWorkflowSpec);

    EXPECT_THROW((void)load_requests((dir_ / "missing.txt").string()), ValidationError);
    EXPECT_THROW((void)load_requests(write("a.txt", "reqest w.spec\n")), ValidationError);
    EXPECT_THROW((void)load_requests(write("b.txt", "request\n")), ValidationError);
    EXPECT_THROW((void)load_requests(write("c.txt", "request nope.spec\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("d.txt", "request w.spec frobnicate=1\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("e.txt", "request w.spec repeat=0\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("f.txt", "request w.spec budget-ms=-4\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("g.txt", "request w.spec priority=urgent\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("h.txt", "request wf.spec reuse-aware\n")),
                 ValidationError);
}

TEST_F(RequestSpecTest, ParsesDeadlineMs) {
    write("w.spec", kBatchSpec);
    const auto requests =
        load_requests(write("r.txt", "request w.spec deadline-ms=125.5\nrequest w.spec\n"));
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].deadline_ms, 125.5);
    EXPECT_EQ(requests[1].deadline_ms, 0.0);  // none declared
}

// Numeric hardening: every malformed numeric must be a line-attributed
// parse error, never a silently wrapped/truncated/non-finite value.
TEST_F(RequestSpecTest, RejectsMalformedNumbersWithLineAttribution) {
    write("w.spec", kBatchSpec);

    const auto expect_fails_on_line_2 = [&](const std::string& name,
                                            const std::string& option) {
        const std::string file =
            write(name, "request w.spec\nrequest w.spec " + option + "\n");
        try {
            (void)load_requests(file);
            FAIL() << option << " was accepted";
        } catch (const ValidationError& e) {
            EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
                << "no line attribution for " << option << ": " << e.what();
        }
    };

    // stoull would wrap "-1" to 2^64-1; must be rejected up front.
    expect_fails_on_line_2("n1.txt", "seed=-1");
    expect_fails_on_line_2("n2.txt", "seed=+3");
    expect_fails_on_line_2("n3.txt", "seed=");
    expect_fails_on_line_2("n4.txt", "seed=7x");
    expect_fails_on_line_2("n5.txt", "repeat=99999999999999999999999999");
    expect_fails_on_line_2("n6.txt", "repeat=2000000");  // over kMaxRepeat
    expect_fails_on_line_2("n7.txt", "budget-ms=");
    expect_fails_on_line_2("n8.txt", "budget-ms=12.5ms");
    // stod happily parses inf/nan; neither is a budget or a deadline.
    expect_fails_on_line_2("n9.txt", "budget-ms=inf");
    expect_fails_on_line_2("n10.txt", "budget-ms=nan");
    expect_fails_on_line_2("n11.txt", "deadline-ms=nan");
    expect_fails_on_line_2("n12.txt", "deadline-ms=-5");
    expect_fails_on_line_2("n13.txt", "deadline-ms=0");  // 0 means "omit it"
    expect_fails_on_line_2("n14.txt", "deadline-ms=1e400");  // double overflow
    // reuse-aware is a flag; a value is a typo worth catching.
    expect_fails_on_line_2("n15.txt", "reuse-aware=1");
}

// ---------------------------------------------------------------------------
// Streaming: handle= on batch requests and amend lines.
// ---------------------------------------------------------------------------

TEST_F(RequestSpecTest, HandleStoresBatchPlansOnly) {
    write("w.spec", kBatchSpec);
    write("wf.spec", kWorkflowSpec);
    const auto requests =
        load_requests(write("r.txt", "request w.spec handle=live seed=7\nrequest w.spec\n"));
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].plan_handle, "live");
    EXPECT_TRUE(requests[1].plan_handle.empty());

    EXPECT_THROW((void)load_requests(write("a.txt", "request wf.spec handle=live\n")),
                 ValidationError);
    EXPECT_THROW((void)load_requests(write("b.txt", "request w.spec handle=\n")),
                 ValidationError);
}

TEST_F(RequestSpecTest, ParsesAmendLines) {
    write("w.spec", kBatchSpec);
    write("burst.spec", "job 10 Join 40\njob 11 KMeans 64\n");
    const auto requests = load_requests(
        write("r.txt",
              "request w.spec handle=live seed=7\n"
              "amend live arrive=burst.spec depart=2 seed=9 priority=high budget-ms=25\n"
              "amend live depart=10,11\n"));
    ASSERT_EQ(requests.size(), 3u);

    const PlanRequest& first = requests[1];
    EXPECT_EQ(first.id, 2u);
    EXPECT_EQ(first.kind, RequestKind::kAmend);
    EXPECT_EQ(first.plan_handle, "live");
    EXPECT_EQ(first.seed, 9u);
    EXPECT_EQ(first.priority, Priority::kHigh);
    EXPECT_EQ(first.max_wall_ms, 25.0);
    ASSERT_TRUE(first.delta.has_value());
    ASSERT_EQ(first.delta->arrivals.size(), 2u);
    EXPECT_EQ(first.delta->arrivals[0].id, 10);
    EXPECT_EQ(first.delta->arrivals[1].id, 11);
    EXPECT_EQ(first.delta->departures, (std::vector<int>{2}));

    const PlanRequest& second = requests[2];
    EXPECT_EQ(second.kind, RequestKind::kAmend);
    ASSERT_TRUE(second.delta.has_value());
    EXPECT_TRUE(second.delta->arrivals.empty());
    EXPECT_EQ(second.delta->departures, (std::vector<int>{10, 11}));
}

TEST_F(RequestSpecTest, AmendArriveIsRepeatable) {
    write("a.spec", "job 10 Sort 40\n");
    write("b.spec", "job 11 Grep 64\n");
    const auto requests =
        load_requests(write("r.txt", "amend live arrive=a.spec arrive=b.spec\n"));
    ASSERT_EQ(requests.size(), 1u);
    ASSERT_TRUE(requests[0].delta.has_value());
    ASSERT_EQ(requests[0].delta->arrivals.size(), 2u);
    EXPECT_EQ(requests[0].delta->arrivals[0].id, 10);
    EXPECT_EQ(requests[0].delta->arrivals[1].id, 11);
}

TEST_F(RequestSpecTest, RejectsMalformedAmendLines) {
    write("w.spec", kBatchSpec);
    write("wf.spec", kWorkflowSpec);

    const auto expect_fails_with = [&](const std::string& name, const std::string& line,
                                       const std::string& needle) {
        const std::string file = write(name, line + "\n");
        try {
            (void)load_requests(file);
            FAIL() << line << " was accepted";
        } catch (const ValidationError& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << "wrong error for '" << line << "': " << e.what();
        }
    };

    expect_fails_with("a1.txt", "amend", "missing plan handle");
    expect_fails_with("a2.txt", "amend arrive=w.spec", "missing plan handle");
    expect_fails_with("a3.txt", "amend live", "at least one of arrive=/depart=");
    expect_fails_with("a4.txt", "amend live seed=3", "at least one of arrive=/depart=");
    expect_fails_with("a5.txt", "amend live arrive=", "arrive needs a value");
    expect_fails_with("a6.txt", "amend live arrive=nope.spec", "bad spec");
    expect_fails_with("a7.txt", "amend live arrive=wf.spec", "workflow");
    expect_fails_with("a8.txt", "amend live depart=", "depart needs a value");
    expect_fails_with("a9.txt", "amend live depart=1,,2", "empty id");
    expect_fails_with("a10.txt", "amend live depart=1,", "empty id");
    expect_fails_with("a11.txt", "amend live depart=-3", "unsigned");
    expect_fails_with("a12.txt", "amend live depart=1,x", "depart");
    expect_fails_with("a13.txt", "amend live depart=99999999999",
                      "out of range");
    expect_fails_with("a14.txt", "amend live depart=1 reuse-aware", "reuse-aware");
    expect_fails_with("a15.txt", "amend live depart=1 repeat=3", "repeat");
    expect_fails_with("a16.txt", "amend live depart=1 frobnicate=1", "unknown option");
}

}  // namespace
}  // namespace cast::serve
