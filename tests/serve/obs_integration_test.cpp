// Observability integration contract: instruments mirror ServiceStats
// exactly (same atomic sites, so the totals agree to the bit even under a
// full-intensity fault storm), the invariant completed + rejected ==
// submitted holds with metrics on, trace spans record request lifecycles,
// and — the load-bearing promise — turning observation on never changes a
// single solver bit.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "serve/faults.hpp"
#include "serve/snapshot.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::serve {
namespace {

using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

workload::Workload workload_a() {
    return workload::Workload({mk_job(1, AppKind::kSort, 200.0),
                               mk_job(2, AppKind::kGrep, 150.0)});
}

workload::Workload workload_b() {
    return workload::Workload({mk_job(1, AppKind::kJoin, 120.0),
                               mk_job(2, AppKind::kKMeans, 90.0)});
}

SnapshotPtr fresh_snapshot() { return make_snapshot(testing::small_models()); }

ServiceOptions fast_options(std::size_t workers) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.solver.annealing.iter_max = 150;
    opts.solver.annealing.chains = 2;
    return opts;
}

void expect_bit_identical(const PlanResponse& got, const PlanResponse& want) {
    ASSERT_EQ(got.status, want.status);
    ASSERT_EQ(got.batch.has_value(), want.batch.has_value());
    if (got.batch) {
        EXPECT_EQ(got.batch->evaluation.utility, want.batch->evaluation.utility);
        EXPECT_EQ(got.batch->evaluation.total_runtime.value(),
                  want.batch->evaluation.total_runtime.value());
        EXPECT_EQ(got.batch->evaluation.total_cost().value(),
                  want.batch->evaluation.total_cost().value());
        ASSERT_EQ(got.batch->plan.size(), want.batch->plan.size());
        for (std::size_t i = 0; i < got.batch->plan.size(); ++i) {
            EXPECT_EQ(got.batch->plan.decision(i).tier,
                      want.batch->plan.decision(i).tier);
            EXPECT_EQ(got.batch->plan.decision(i).overprovision,
                      want.batch->plan.decision(i).overprovision);
        }
    }
}

std::vector<PlanRequest> mixed_requests(std::uint64_t count) {
    std::vector<PlanRequest> requests;
    requests.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PlanRequest r;
        r.id = i + 1;
        r.workload = (i % 2 == 0) ? workload_a() : workload_b();
        r.seed = i % 5;  // a few distinct templates -> some coalescing
        r.priority = (i % 3 == 0)   ? Priority::kHigh
                     : (i % 3 == 1) ? Priority::kNormal
                                    : Priority::kLow;
        requests.push_back(std::move(r));
    }
    return requests;
}

// The headline golden test: metrics + tracing on produces bit-identical
// responses to the default-off configuration. Observation reads, never
// steers.
TEST(ServiceObservability, InstrumentedRunIsBitIdenticalToUninstrumented) {
    const auto requests = mixed_requests(8);
    auto run = [&requests](ServiceOptions opts) {
        PlannerService service(fresh_snapshot(), opts);
        std::vector<std::future<PlanResponse>> futures;
        for (const PlanRequest& request : requests) {
            futures.push_back(service.submit(request));
        }
        std::vector<PlanResponse> out;
        for (auto& f : futures) out.push_back(f.get());
        return out;
    };

    ServiceOptions plain = fast_options(2);
    ServiceOptions instrumented = fast_options(2);
    instrumented.obs.metrics = true;
    instrumented.obs.trace_capacity = 64;

    const auto bare = run(plain);
    const auto observed = run(instrumented);
    ASSERT_EQ(bare.size(), observed.size());
    for (std::size_t i = 0; i < bare.size(); ++i) {
        ASSERT_TRUE(bare[i].ok()) << bare[i].error;
        ASSERT_TRUE(observed[i].ok()) << observed[i].error;
        expect_bit_identical(observed[i], bare[i]);
    }
}

// Registry counters are incremented at the same sites as the ServiceStats
// atomics, so the two views must agree EXACTLY — even under a
// full-intensity fault storm with retries, breakers, sheds and
// backpressure all firing at once across 8 workers (this is the TSan
// lane's data-race hammer for the obs layer).
TEST(ServiceObservability, RegistryAgreesWithStatsUnderFaultStorm) {
    ServiceOptions opts = fast_options(8);
    opts.obs.metrics = true;
    opts.obs.trace_capacity = 128;
    opts.governor.enabled = true;
    opts.queue_capacity = 32;  // small enough that backpressure also fires
    opts.faults = ServeFaultProfile::scaled(1.0, 4242);

    std::uint64_t submitted = 0;
    {
        PlannerService service(fresh_snapshot(), opts);
        ASSERT_TRUE(service.metrics_enabled());
        const auto requests = mixed_requests(48);
        std::vector<std::future<PlanResponse>> futures;
        for (const PlanRequest& request : requests) {
            futures.push_back(service.submit(request));
            ++submitted;
        }
        for (auto& f : futures) (void)f.get();  // every future must resolve

        const ServiceStats stats = service.stats();
        // The bookkeeping invariant: nothing vanishes, nothing double-counts.
        EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
        EXPECT_EQ(stats.submitted, submitted);

        // Exact agreement between the registry and the stats snapshot. The
        // service is idle (all futures resolved), so no counter is mid-update.
        const obs::MetricsRegistry& reg = service.metrics();
        EXPECT_EQ(reg.counter_value("serve.requests.submitted"), stats.submitted);
        EXPECT_EQ(reg.counter_value("serve.requests.completed"), stats.completed);
        EXPECT_EQ(reg.counter_value("serve.requests.rejected"), stats.rejected);
        EXPECT_EQ(reg.counter_value("serve.requests.errors"), stats.errors);
        EXPECT_EQ(reg.counter_value("serve.requests.coalesced"), stats.coalesced);
        EXPECT_EQ(reg.counter_value("serve.dispatch.batches"), stats.batches);
        EXPECT_EQ(reg.counter_value("serve.governor.served_full"), stats.served_full);
        EXPECT_EQ(reg.counter_value("serve.governor.served_trimmed"),
                  stats.served_trimmed);
        EXPECT_EQ(reg.counter_value("serve.governor.served_greedy"),
                  stats.served_greedy);
        EXPECT_EQ(reg.counter_value("serve.governor.shed_overload"),
                  stats.governor_shed);
        EXPECT_EQ(reg.counter_value("serve.governor.shed_deadline"),
                  stats.deadline_shed);
        EXPECT_EQ(reg.counter_value("serve.retry.attempts"), stats.solve_retries);
        EXPECT_EQ(reg.counter_value("serve.breaker.fastfail"), stats.breaker_fastfail);
        EXPECT_EQ(reg.counter_value("serve.snapshot.swaps"), stats.snapshot_swaps);
        EXPECT_EQ(reg.counter_value("serve.snapshot.clears_suppressed"),
                  stats.swap_clears_suppressed);

        // Pull gauges read live owner state without perturbing it.
        EXPECT_EQ(reg.gauge_value("serve.queue.depth"), 0.0);  // drained
        EXPECT_EQ(reg.gauge_value("serve.governor.ewma_seeded"),
                  stats.ewma_seeded ? 1.0 : 0.0);
        EXPECT_EQ(reg.gauge_value("serve.breakers.trips"),
                  static_cast<double>(stats.breaker_trips));
        EXPECT_GE(reg.gauge_value("serve.snapshot.epoch"), 1.0);
        EXPECT_EQ(reg.gauge_value("serve.cache.inserts"),
                  static_cast<double>(stats.cache.inserts));

        // Per-priority latency histograms cover exactly the ok responses.
        const std::uint64_t observed_latencies =
            reg.histogram_count("serve.latency_ms.high") +
            reg.histogram_count("serve.latency_ms.normal") +
            reg.histogram_count("serve.latency_ms.low");
        EXPECT_EQ(observed_latencies, stats.completed - stats.errors);

        // The JSON export is well-formed enough to never leak a bare NaN.
        const std::string doc = reg.json();
        EXPECT_EQ(doc.find("nan"), std::string::npos);
        EXPECT_NE(doc.find("\"serve.requests.submitted\""), std::string::npos);

        // Every buffered trace span is a complete lifecycle: admit first,
        // respond last, a known outcome, monotone timestamps.
        const auto spans = service.trace_spans();
        EXPECT_GT(spans.size(), 0u);
        EXPECT_LE(spans.size(), service.trace_ring().capacity());
        for (const obs::TraceSpan& span : spans) {
            ASSERT_GE(span.events.size(), 2u);
            EXPECT_EQ(span.events.front().name, "admit");
            EXPECT_EQ(span.events.back().name, "respond");
            EXPECT_TRUE(span.outcome == "ok" || span.outcome == "rejected" ||
                        span.outcome == "error")
                << span.outcome;
            for (std::size_t i = 1; i < span.events.size(); ++i) {
                EXPECT_LE(span.events[i - 1].at_ms, span.events[i].at_ms);
            }
        }
    }
}

// Default-off: a service constructed without obs options carries no
// registry instruments and buffers no spans (zero overhead path).
TEST(ServiceObservability, DefaultConfigurationHasNoInstruments) {
    PlannerService service(fresh_snapshot(), fast_options(1));
    EXPECT_FALSE(service.metrics_enabled());
    EXPECT_FALSE(service.trace_ring().enabled());
    PlanRequest request;
    request.id = 1;
    request.workload = workload_a();
    request.seed = 3;
    ASSERT_TRUE(service.submit(request).get().ok());
    EXPECT_FALSE(service.metrics().has_counter("serve.requests.submitted"));
    EXPECT_TRUE(service.trace_spans().empty());
}

// ewma_seeded surfaces through stats and the gauge: false before any solve
// completes, true after.
TEST(ServiceObservability, EwmaSeededFlagFlipsAfterFirstSolve) {
    ServiceOptions opts = fast_options(1);
    opts.obs.metrics = true;
    PlannerService service(fresh_snapshot(), opts);
    EXPECT_FALSE(service.stats().ewma_seeded);
    EXPECT_EQ(service.metrics().gauge_value("serve.governor.ewma_seeded"), 0.0);

    PlanRequest request;
    request.id = 1;
    request.workload = workload_b();
    request.seed = 2;
    ASSERT_TRUE(service.submit(request).get().ok());

    const ServiceStats stats = service.stats();
    EXPECT_TRUE(stats.ewma_seeded);
    EXPECT_GT(stats.ewma_solve_ms, 0.0);
    EXPECT_EQ(service.metrics().gauge_value("serve.governor.ewma_seeded"), 1.0);
    EXPECT_EQ(service.metrics().gauge_value("serve.governor.ewma_solve_ms"),
              stats.ewma_solve_ms);
}

}  // namespace
}  // namespace cast::serve
