// OverloadGovernor unit tests plus governed-PlannerService contract tests:
// the idle governor changes no bits, the degradation ladder is deterministic
// in its inputs, retries recover transient injected faults without changing
// bits, poisoned templates trip the per-template breaker, provably-late
// requests are shed, and the swap-storm guard suppresses eager cache clears.
#include "serve/governor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/castpp.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::serve {
namespace {

using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload workload_a() {
    return workload::Workload({mk_job(1, AppKind::kSort, 200.0),
                               mk_job(2, AppKind::kGrep, 150.0),
                               mk_job(3, AppKind::kJoin, 120.0)});
}

workload::Workflow workflow_c() {
    return workload::Workflow(
        "wf", {mk_job(1, AppKind::kSort, 60.0), mk_job(2, AppKind::kGrep, 60.0)},
        {{1, 2}}, Seconds{36000.0});
}

SnapshotPtr fresh_snapshot() { return make_snapshot(testing::small_models()); }

/// Short-iteration solver config so each request solves in milliseconds.
ServiceOptions fast_options(std::size_t workers) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.solver.annealing.iter_max = 150;
    opts.solver.annealing.chains = 2;
    return opts;
}

/// fast_options with an *idle* governor: enabled, but the latency target is
/// so loose that no test-scale backlog can reach the trim threshold.
ServiceOptions governed_idle_options(std::size_t workers) {
    ServiceOptions opts = fast_options(workers);
    opts.governor.enabled = true;
    opts.governor.latency_target_ms = 60'000.0;
    return opts;
}

PlanRequest batch_request(std::uint64_t id, std::uint64_t seed) {
    PlanRequest req;
    req.id = id;
    req.workload = workload_a();
    req.seed = seed;
    return req;
}

void expect_bit_identical(const PlanResponse& got, const PlanResponse& want) {
    ASSERT_EQ(got.status, want.status);
    ASSERT_EQ(got.batch.has_value(), want.batch.has_value());
    ASSERT_EQ(got.workflow.has_value(), want.workflow.has_value());
    if (got.batch) {
        EXPECT_EQ(got.batch->evaluation.utility, want.batch->evaluation.utility);
        EXPECT_EQ(got.batch->evaluation.total_runtime.value(),
                  want.batch->evaluation.total_runtime.value());
        ASSERT_EQ(got.batch->plan.size(), want.batch->plan.size());
        for (std::size_t i = 0; i < got.batch->plan.size(); ++i) {
            EXPECT_EQ(got.batch->plan.decision(i).tier, want.batch->plan.decision(i).tier);
            EXPECT_EQ(got.batch->plan.decision(i).overprovision,
                      want.batch->plan.decision(i).overprovision);
        }
    }
    if (got.workflow) {
        EXPECT_EQ(got.workflow->evaluation.total_runtime.value(),
                  want.workflow->evaluation.total_runtime.value());
        ASSERT_EQ(got.workflow->plan.decisions.size(),
                  want.workflow->plan.decisions.size());
        for (std::size_t i = 0; i < got.workflow->plan.decisions.size(); ++i) {
            EXPECT_EQ(got.workflow->plan.decisions[i].tier,
                      want.workflow->plan.decisions[i].tier);
        }
    }
}

// ---------------------------------------------------------------------------
// OverloadGovernor unit tests (no service, fully deterministic).

TEST(OverloadGovernor, LevelNamesAreWireStable) {
    EXPECT_STREQ(degradation_level_name(DegradationLevel::kFull), "full");
    EXPECT_STREQ(degradation_level_name(DegradationLevel::kTrimmed), "trimmed");
    EXPECT_STREQ(degradation_level_name(DegradationLevel::kGreedy), "greedy");
    EXPECT_STREQ(degradation_level_name(DegradationLevel::kShed), "shed");
}

TEST(OverloadGovernor, ClassifyWalksTheLadderAtItsThresholds) {
    GovernorOptions opts;
    opts.enabled = true;
    OverloadGovernor governor(opts, /*workers=*/1, /*queue_capacity=*/100);

    EXPECT_EQ(governor.classify(0.0), DegradationLevel::kFull);
    EXPECT_EQ(governor.classify(0.99), DegradationLevel::kFull);
    EXPECT_EQ(governor.classify(1.0), DegradationLevel::kTrimmed);   // trim_pressure
    EXPECT_EQ(governor.classify(1.99), DegradationLevel::kTrimmed);
    EXPECT_EQ(governor.classify(2.0), DegradationLevel::kGreedy);    // greedy_pressure
    EXPECT_EQ(governor.classify(3.99), DegradationLevel::kGreedy);
    EXPECT_EQ(governor.classify(4.0), DegradationLevel::kShed);      // shed_pressure
    EXPECT_EQ(governor.classify(100.0), DegradationLevel::kShed);
}

TEST(OverloadGovernor, PressureIsEstimatedDrainTimeOverTheTarget) {
    GovernorOptions opts;
    opts.enabled = true;
    opts.latency_target_ms = 100.0;
    OverloadGovernor governor(opts, /*workers=*/2, /*queue_capacity=*/1000);

    EXPECT_EQ(governor.ewma_solve_ms(), 0.0);
    // Cold EWMA: only the occupancy backstop reads (8/1000 of shed = 4).
    EXPECT_DOUBLE_EQ(governor.pressure(8, 2), 8.0 / 1000.0 * 4.0);
    EXPECT_DOUBLE_EQ(governor.pressure(0, 2), 0.0);

    governor.record_solve_ms(50.0);
    EXPECT_DOUBLE_EQ(governor.ewma_solve_ms(), 50.0);  // first sample seeds
    // Backlog of 10 at 50ms each over 2 workers = 250ms drain; target 100ms.
    EXPECT_DOUBLE_EQ(governor.pressure(8, 2), 2.5);
    EXPECT_DOUBLE_EQ(governor.pressure(0, 0), 0.0);
}

TEST(OverloadGovernor, EwmaSeedsWithFirstSampleThenSmooths) {
    GovernorOptions opts;
    opts.enabled = true;
    opts.ewma_alpha = 0.5;
    OverloadGovernor governor(opts, 1, 10);

    governor.record_solve_ms(100.0);
    EXPECT_DOUBLE_EQ(governor.ewma_solve_ms(), 100.0);
    governor.record_solve_ms(50.0);
    EXPECT_DOUBLE_EQ(governor.ewma_solve_ms(), 75.0);
    governor.record_solve_ms(-1.0);  // garbage sample is ignored
    EXPECT_DOUBLE_EQ(governor.ewma_solve_ms(), 75.0);
}

// The cold-start backstop: a full queue must read as shed pressure even
// before any solve has seeded the EWMA.
TEST(OverloadGovernor, FullQueueShedsEvenWithColdEwma) {
    GovernorOptions opts;
    opts.enabled = true;
    OverloadGovernor governor(opts, 4, /*queue_capacity=*/16);

    EXPECT_DOUBLE_EQ(governor.pressure(16, 0), opts.shed_pressure);
    EXPECT_EQ(governor.classify(governor.pressure(16, 0)), DegradationLevel::kShed);
    // Half occupancy reads as half of shed pressure = greedy territory.
    EXPECT_DOUBLE_EQ(governor.pressure(8, 0), opts.shed_pressure / 2.0);
}

TEST(OverloadGovernor, ProvablyLateNeedsLatencyEvidence) {
    GovernorOptions opts;
    opts.enabled = true;
    OverloadGovernor governor(opts, /*workers=*/1, 100);

    // Unseeded EWMA: nothing is provable, whatever the backlog.
    EXPECT_FALSE(governor.provably_late(1.0, 50, 10));

    governor.record_solve_ms(100.0);
    EXPECT_TRUE(governor.provably_late(50.0, 1, 0));    // predicted 100 > 50
    EXPECT_FALSE(governor.provably_late(150.0, 1, 0));  // predicted 100 <= 150
    EXPECT_FALSE(governor.provably_late(0.0, 50, 10));  // no deadline declared
    // More workers drain the same backlog faster.
    OverloadGovernor wide(opts, /*workers=*/4, 100);
    wide.record_solve_ms(100.0);
    EXPECT_FALSE(wide.provably_late(50.0, 1, 0));  // predicted 25 <= 50
}

TEST(GovernorOptions, ApplyTrimsBudgetsDeterministically) {
    GovernorOptions gov;
    gov.trim_iter_factor = 0.25;
    gov.trim_wall_factor = 0.25;

    core::CastOptions opts;
    opts.annealing.iter_max = 20'000;
    opts.annealing.chains = 6;
    opts.annealing.max_wall_ms = 100.0;

    core::CastOptions full = opts;
    gov.apply(DegradationLevel::kFull, full);
    EXPECT_EQ(full.annealing.iter_max, 20'000);
    EXPECT_EQ(full.annealing.chains, 6);
    EXPECT_EQ(full.annealing.max_wall_ms, 100.0);

    core::CastOptions greedy = opts;  // kGreedy degrades by solver, not budget
    gov.apply(DegradationLevel::kGreedy, greedy);
    EXPECT_EQ(greedy.annealing.iter_max, 20'000);

    core::CastOptions trimmed = opts;
    gov.apply(DegradationLevel::kTrimmed, trimmed);
    EXPECT_EQ(trimmed.annealing.iter_max, 5'000);
    EXPECT_EQ(trimmed.annealing.chains, 3);
    EXPECT_EQ(trimmed.annealing.max_wall_ms, 25.0);

    // Floors: a tiny budget never trims to zero, and an unbudgeted request
    // (wall 0 = none) stays unbudgeted rather than gaining a zero budget.
    core::CastOptions tiny;
    tiny.annealing.iter_max = 2;
    tiny.annealing.chains = 1;
    tiny.annealing.max_wall_ms = 0.0;
    gov.apply(DegradationLevel::kTrimmed, tiny);
    EXPECT_GE(tiny.annealing.iter_max, 1);
    EXPECT_GE(tiny.annealing.chains, 1);
    EXPECT_EQ(tiny.annealing.max_wall_ms, 0.0);
}

TEST(GovernorOptions, ValidateRejectsAnInvertedLadder) {
    GovernorOptions opts;
    opts.trim_pressure = 2.0;
    opts.greedy_pressure = 1.0;  // below trim
    EXPECT_THROW(opts.validate(), PreconditionError);

    opts = {};
    opts.shed_pressure = opts.greedy_pressure / 2.0;  // below greedy
    EXPECT_THROW(opts.validate(), PreconditionError);

    opts = {};
    opts.ewma_alpha = 0.0;
    EXPECT_THROW(opts.validate(), PreconditionError);

    opts = {};
    opts.trim_iter_factor = 0.0;
    EXPECT_THROW(opts.validate(), PreconditionError);

    opts = {};
    opts.latency_target_ms = 0.0;
    EXPECT_THROW(opts.validate(), PreconditionError);
}

// ---------------------------------------------------------------------------
// Degradation ladder semantics through solve_direct (deterministic, no
// queue/timing in the loop).

// The acceptance bit-identity half that needs no service: kFull through the
// governor's apply() is a no-op, so a governed kFull solve_direct equals an
// ungoverned one bit-for-bit.
TEST(GovernedSolveDirect, FullLevelMatchesUngovernedSolve) {
    const auto snapshot = fresh_snapshot();
    const ServiceOptions plain = fast_options(1);
    ServiceOptions governed = governed_idle_options(1);

    for (std::uint64_t seed : {7u, 11u}) {
        const PlanRequest req = batch_request(seed, seed);
        const PlanResponse want =
            PlannerService::solve_direct(*snapshot, req, plain);
        const PlanResponse got = PlannerService::solve_direct(
            *snapshot, req, governed, nullptr, DegradationLevel::kFull);
        ASSERT_TRUE(want.ok());
        ASSERT_TRUE(got.ok()) << got.error;
        expect_bit_identical(got, want);
        EXPECT_EQ(got.degradation_level, DegradationLevel::kFull);
    }
}

// kGreedy must be exactly the greedy facade — a real feasible plan with no
// annealing iterations, for both batch and workflow requests.
TEST(GovernedSolveDirect, GreedyLevelIsTheGreedyFacadeBitForBit) {
    const auto snapshot = fresh_snapshot();
    const ServiceOptions opts = governed_idle_options(1);

    PlanRequest batch = batch_request(1, 7);
    const PlanResponse got = PlannerService::solve_direct(
        *snapshot, batch, opts, nullptr, DegradationLevel::kGreedy);
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.degradation_level, DegradationLevel::kGreedy);
    ASSERT_TRUE(got.batch.has_value());
    EXPECT_EQ(got.batch->iterations, 0);  // no annealing ran
    EXPECT_TRUE(got.batch->evaluation.feasible);

    core::CastOptions solver = opts.solver;
    solver.annealing.seed = 7;
    const core::CastResult direct = core::plan_cast_greedy(
        snapshot->models(), *batch.workload, solver, /*reuse_aware=*/false);
    EXPECT_EQ(got.batch->evaluation.utility, direct.evaluation.utility);
    ASSERT_EQ(got.batch->plan.size(), direct.plan.size());
    for (std::size_t i = 0; i < direct.plan.size(); ++i) {
        EXPECT_EQ(got.batch->plan.decision(i).tier, direct.plan.decision(i).tier);
    }

    PlanRequest wf;
    wf.id = 2;
    wf.kind = RequestKind::kWorkflow;
    wf.workflow = workflow_c();
    wf.seed = 3;
    const PlanResponse wf_got = PlannerService::solve_direct(
        *snapshot, wf, opts, nullptr, DegradationLevel::kGreedy);
    ASSERT_TRUE(wf_got.ok()) << wf_got.error;
    ASSERT_TRUE(wf_got.workflow.has_value());
    EXPECT_EQ(wf_got.workflow->iterations, 0);
}

// kTrimmed equals an ungoverned solve whose budgets were shrunk by hand —
// the trim is a deterministic options transform, nothing more.
TEST(GovernedSolveDirect, TrimmedLevelEqualsManuallyTrimmedBudgets) {
    const auto snapshot = fresh_snapshot();
    ServiceOptions governed = governed_idle_options(1);
    const PlanRequest req = batch_request(1, 7);

    const PlanResponse trimmed = PlannerService::solve_direct(
        *snapshot, req, governed, nullptr, DegradationLevel::kTrimmed);
    ASSERT_TRUE(trimmed.ok()) << trimmed.error;
    EXPECT_EQ(trimmed.degradation_level, DegradationLevel::kTrimmed);

    ServiceOptions by_hand = fast_options(1);
    by_hand.solver.annealing.iter_max = std::max(
        1, static_cast<int>(150 * governed.governor.trim_iter_factor));
    by_hand.solver.annealing.chains = 1;  // 2 / 2
    const PlanResponse want = PlannerService::solve_direct(*snapshot, req, by_hand);
    ASSERT_TRUE(want.ok());
    expect_bit_identical(trimmed, want);
}

TEST(GovernedSolveDirect, ShedIsNotASolverMode) {
    const auto snapshot = fresh_snapshot();
    const PlanRequest req = batch_request(1, 7);
    EXPECT_THROW((void)PlannerService::solve_direct(*snapshot, req, fast_options(1),
                                                    nullptr, DegradationLevel::kShed),
                 PreconditionError);
}

// ---------------------------------------------------------------------------
// Governed PlannerService contract tests.

// The acceptance criterion: zero faults + idle governor leaves every service
// response bit-identical to the ungoverned direct solve, served at kFull on
// the first attempt, with every degradation/fault counter at zero.
TEST(GovernedPlannerService, IdleGovernorAndZeroFaultsChangeNoBits) {
    const auto truth_snapshot = fresh_snapshot();
    const ServiceOptions plain = fast_options(1);
    std::vector<PlanRequest> requests;
    for (std::uint64_t i = 0; i < 4; ++i) requests.push_back(batch_request(i + 1, 7 + i));
    std::vector<PlanResponse> truth;
    for (const PlanRequest& req : requests) {
        truth.push_back(PlannerService::solve_direct(*truth_snapshot, req, plain));
        ASSERT_TRUE(truth.back().ok());
    }

    PlannerService service(fresh_snapshot(), governed_idle_options(2));
    std::vector<std::future<PlanResponse>> futures;
    for (const PlanRequest& req : requests) futures.push_back(service.submit(req));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const PlanResponse got = futures[i].get();
        ASSERT_TRUE(got.ok()) << got.error;
        expect_bit_identical(got, truth[i]);
        EXPECT_EQ(got.degradation_level, DegradationLevel::kFull);
        EXPECT_EQ(got.attempts, 1);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.served_full, requests.size());
    EXPECT_EQ(stats.served_trimmed, 0u);
    EXPECT_EQ(stats.served_greedy, 0u);
    EXPECT_EQ(stats.governor_shed, 0u);
    EXPECT_EQ(stats.deadline_shed, 0u);
    EXPECT_EQ(stats.solve_retries, 0u);
    EXPECT_EQ(stats.breaker_fastfail, 0u);
    EXPECT_EQ(stats.breaker_trips, 0u);
    EXPECT_EQ(stats.swap_clears_suppressed, 0u);
    EXPECT_GT(stats.ewma_solve_ms, 0.0);  // the governor was watching
    EXPECT_FALSE(stats.faults.any());
}

// Transient injected faults: the retry wrapper recovers every marked
// request, and — because the fault stream is independent of solver seeds —
// the recovered responses still carry exactly the no-fault bits.
TEST(GovernedPlannerService, RetriesRecoverTransientFaultsWithoutChangingBits) {
    const auto truth_snapshot = fresh_snapshot();
    const ServiceOptions plain = fast_options(1);
    std::vector<PlanRequest> requests;
    for (std::uint64_t i = 0; i < 6; ++i) requests.push_back(batch_request(i + 1, 7 + i));
    std::vector<PlanResponse> truth;
    for (const PlanRequest& req : requests) {
        truth.push_back(PlannerService::solve_direct(*truth_snapshot, req, plain));
    }

    ServiceOptions opts = governed_idle_options(2);
    opts.coalesce_identical = false;
    opts.faults.seed = 42;
    opts.faults.exception_prob = 1.0;  // every request marked...
    opts.faults.max_failed_attempts = 2;  // ...fails 1-2 tries, then recovers
    // retry.max_attempts defaults to 3 >= 1 + max_failed_attempts: always enough.

    PlannerService service(fresh_snapshot(), opts);
    std::vector<std::future<PlanResponse>> futures;
    for (const PlanRequest& req : requests) futures.push_back(service.submit(req));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const PlanResponse got = futures[i].get();
        ASSERT_TRUE(got.ok()) << got.error;
        EXPECT_GT(got.attempts, 1);  // marked: the first try threw
        expect_bit_identical(got, truth[i]);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, requests.size());
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_GE(stats.solve_retries, requests.size());
    EXPECT_GT(stats.faults.injected_exceptions, 0u);
    EXPECT_EQ(stats.breaker_trips, 0u);  // recovered before any threshold
}

// A poisoned template (faults that never recover) exhausts its retry budget
// a bounded number of times, trips the per-template breaker, and every
// later reappearance fails fast without burning a worker.
TEST(GovernedPlannerService, PoisonedTemplateTripsTheBreakerThenFailsFast) {
    ServiceOptions opts = governed_idle_options(1);
    opts.coalesce_identical = false;
    opts.faults.seed = 42;
    opts.faults.exception_prob = 1.0;
    opts.faults.max_failed_attempts = 0;  // poisoned: every attempt fails
    opts.governor.retry = Backoff{.max_attempts = 2, .base_ms = 0.0};
    opts.governor.breaker =
        CircuitBreakerOptions{.failure_threshold = 3, .open_ms = 0.0,
                              .open_ops = 1'000'000};  // stays open for the test

    PlannerService service(fresh_snapshot(), opts);
    constexpr std::uint64_t kRequests = 6;
    std::vector<PlanResponse> responses;
    for (std::uint64_t i = 0; i < kRequests; ++i) {
        // Sequential (each .get() before the next submit) so the breaker
        // walk is exactly reproducible: same template => same breaker.
        responses.push_back(service.submit(batch_request(i + 1, 7)).get());
    }

    for (const PlanResponse& resp : responses) {
        EXPECT_EQ(resp.status, ResponseStatus::kError);
        EXPECT_FALSE(resp.error.empty());
    }
    // Request 1: 2 attempts fail (2 consecutive failures). Request 2: its
    // first failure is the 3rd consecutive -> the breaker trips open mid-
    // retry. Requests 3..6 fail fast without a solve attempt.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_EQ(stats.breaker_fastfail, kRequests - 2);
    EXPECT_EQ(stats.errors, kRequests);
    EXPECT_EQ(stats.completed, kRequests);  // errors are completed work
    EXPECT_EQ(responses.back().attempts, 1);  // fast-fail consumed no retries
}

// Deadline shedding at dispatch: a request whose deadline already elapsed
// while it queued is dropped as kShed/kRejected, never solved.
TEST(GovernedPlannerService, ElapsedDeadlineIsShedAtDispatch) {
    ServiceOptions opts = governed_idle_options(1);
    opts.coalesce_identical = false;
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 50.0;  // the head request occupies the worker

    PlannerService service(fresh_snapshot(), opts);
    auto head = service.submit(batch_request(1, 5));  // no deadline

    PlanRequest late = batch_request(2, 6);
    late.deadline_ms = 0.01;  // will certainly elapse behind the ~50ms head
    auto late_future = service.submit(late);

    ASSERT_TRUE(head.get().ok());
    const PlanResponse resp = late_future.get();
    EXPECT_EQ(resp.status, ResponseStatus::kRejected);
    EXPECT_EQ(resp.degradation_level, DegradationLevel::kShed);
    EXPECT_FALSE(resp.error.empty());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.deadline_shed, 1u);
    EXPECT_EQ(stats.rejected, 1u);  // sheds are rejections, not completions
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

// Forced overload: with shed-level thresholds pinned to the floor, the
// first solve seeds the EWMA and everything behind the backlog sheds —
// counted as governor_shed and rejected, preserving the accounting
// invariant completed + rejected == submitted.
TEST(GovernedPlannerService, OverloadShedsAreCountedAsRejections) {
    ServiceOptions opts = fast_options(1);
    opts.coalesce_identical = false;
    opts.governor.enabled = true;
    opts.governor.latency_target_ms = 0.001;  // any seeded backlog is overload
    opts.governor.trim_pressure = 1e-6;
    opts.governor.greedy_pressure = 1e-6;
    opts.governor.shed_pressure = 1e-6;

    PlannerService service(fresh_snapshot(), opts);
    // First request dispatches against a cold EWMA (pressure 0 -> kFull).
    ASSERT_TRUE(service.submit(batch_request(1, 7)).get().ok());
    // Now the EWMA is seeded; the next dispatch sees backlog >= 1 in flight
    // and pressure far beyond the floor thresholds: shed.
    const PlanResponse resp = service.submit(batch_request(2, 8)).get();
    EXPECT_EQ(resp.status, ResponseStatus::kRejected);
    EXPECT_EQ(resp.degradation_level, DegradationLevel::kShed);
    // Shed responses carry no result object, so the echoed kind is the only
    // way a caller can tell what was dropped.
    EXPECT_EQ(resp.kind, RequestKind::kBatch);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.governor_shed, 1u);
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

// Swap-storm guard: back-to-back swaps trip the swap breaker and later
// swaps skip the eager cache clear (counted), while solves keep working.
TEST(GovernedPlannerService, SwapStormSuppressesEagerCacheClears) {
    ServiceOptions opts = governed_idle_options(1);
    opts.governor.swap_storm_window_ms = 1e9;  // every consecutive swap = storm
    opts.governor.swap_breaker =
        CircuitBreakerOptions{.failure_threshold = 2, .open_ms = 0.0,
                              .open_ops = 1'000'000};

    PlannerService service(fresh_snapshot(), opts);
    // Swap 1: no prior swap, success. Swaps 2-3: storm samples -> trip at 2
    // consecutive. Swaps 4-5: breaker open -> clears suppressed.
    for (int i = 0; i < 5; ++i) service.swap_snapshot(fresh_snapshot());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.snapshot_swaps, 5u);
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_EQ(stats.swap_clears_suppressed, 2u);

    // The cache is a pure memo: a suppressed clear never changes bits.
    const PlanResponse resp = service.submit(batch_request(1, 7)).get();
    ASSERT_TRUE(resp.ok()) << resp.error;
    const PlanResponse want = PlannerService::solve_direct(
        *service.snapshot(), batch_request(1, 7), fast_options(1));
    expect_bit_identical(resp, want);
}

// Satellite: the cancel token firing mid-batch (TSan lane). A concurrent
// cancel while a governed batch is in flight must drain every request as
// budget_exhausted — no hangs, no lost promises, no shed misaccounting.
TEST(GovernedPlannerService, CancelTokenFiringMidBatchDrainsEverything) {
    ServiceOptions opts = governed_idle_options(2);
    opts.coalesce_identical = false;
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 5'000.0;  // would take seconds uncancelled

    PlannerService service(fresh_snapshot(), opts);
    std::vector<std::future<PlanResponse>> futures;
    for (std::uint64_t i = 0; i < 6; ++i) {
        futures.push_back(service.submit(batch_request(i + 1, i)));
    }

    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        service.cancel_inflight();
    });
    for (auto& future : futures) {
        const PlanResponse resp = future.get();
        ASSERT_TRUE(resp.ok()) << resp.error;
        EXPECT_TRUE(resp.budget_exhausted());
    }
    canceller.join();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, futures.size());
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

}  // namespace
}  // namespace cast::serve
