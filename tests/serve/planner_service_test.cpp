// PlannerService contract tests: the service is a throughput layer, never a
// semantics layer — every response must be bit-identical to a direct solve
// of the same request, under any worker count, queue pressure, coalescing,
// cancellation, or a snapshot swap racing the dispatch.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "serve/snapshot.hpp"
#include "test_support.hpp"
#include "workload/workflow.hpp"

namespace cast::serve {
namespace {

using workload::AppKind;

workload::JobSpec mk_job(int id, AppKind app, double gb,
                         std::optional<int> group = std::nullopt) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = id,
                             .name = "j" + std::to_string(id),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = group};
}

workload::Workload workload_a() {
    return workload::Workload({mk_job(1, AppKind::kSort, 200.0),
                               mk_job(2, AppKind::kGrep, 150.0),
                               mk_job(3, AppKind::kJoin, 120.0)});
}

workload::Workload workload_b() {
    return workload::Workload({mk_job(1, AppKind::kKMeans, 90.0, 1),
                               mk_job(2, AppKind::kKMeans, 90.0, 1),
                               mk_job(3, AppKind::kSort, 260.0)});
}

workload::Workflow workflow_c() {
    return workload::Workflow(
        "wf", {mk_job(1, AppKind::kSort, 60.0), mk_job(2, AppKind::kGrep, 60.0)},
        {{1, 2}}, Seconds{36000.0});
}

SnapshotPtr fresh_snapshot() { return make_snapshot(testing::small_models()); }

/// Short-iteration solver config so each request solves in milliseconds.
ServiceOptions fast_options(std::size_t workers) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.solver.annealing.iter_max = 150;
    opts.solver.annealing.chains = 2;
    return opts;
}

/// The mixed request mix used by the golden tests: two distinct batch
/// workloads (one duplicated → coalescing candidate), a reuse-aware solve,
/// and a workflow.
std::vector<PlanRequest> golden_requests() {
    std::vector<PlanRequest> requests;
    PlanRequest a;
    a.id = 1;
    a.workload = workload_a();
    a.seed = 7;
    requests.push_back(a);

    PlanRequest dup = a;  // identical content, new id: coalescable
    dup.id = 2;
    requests.push_back(dup);

    PlanRequest b;
    b.id = 3;
    b.workload = workload_b();
    b.reuse_aware = true;
    b.seed = 11;
    b.priority = Priority::kHigh;
    requests.push_back(b);

    PlanRequest wf;
    wf.id = 4;
    wf.kind = RequestKind::kWorkflow;
    wf.workflow = workflow_c();
    wf.seed = 3;
    wf.priority = Priority::kLow;
    requests.push_back(wf);
    return requests;
}

void expect_bit_identical(const PlanResponse& got, const PlanResponse& want) {
    ASSERT_EQ(got.status, want.status);
    ASSERT_EQ(got.batch.has_value(), want.batch.has_value());
    ASSERT_EQ(got.workflow.has_value(), want.workflow.has_value());
    if (got.batch) {
        EXPECT_EQ(got.batch->evaluation.utility, want.batch->evaluation.utility);
        EXPECT_EQ(got.batch->evaluation.total_runtime.value(),
                  want.batch->evaluation.total_runtime.value());
        EXPECT_EQ(got.batch->evaluation.total_cost().value(),
                  want.batch->evaluation.total_cost().value());
        ASSERT_EQ(got.batch->plan.size(), want.batch->plan.size());
        for (std::size_t i = 0; i < got.batch->plan.size(); ++i) {
            EXPECT_EQ(got.batch->plan.decision(i).tier, want.batch->plan.decision(i).tier);
            EXPECT_EQ(got.batch->plan.decision(i).overprovision,
                      want.batch->plan.decision(i).overprovision);
        }
    }
    if (got.workflow) {
        EXPECT_EQ(got.workflow->evaluation.total_runtime.value(),
                  want.workflow->evaluation.total_runtime.value());
        EXPECT_EQ(got.workflow->evaluation.total_cost().value(),
                  want.workflow->evaluation.total_cost().value());
        ASSERT_EQ(got.workflow->plan.decisions.size(),
                  want.workflow->plan.decisions.size());
        for (std::size_t i = 0; i < got.workflow->plan.decisions.size(); ++i) {
            EXPECT_EQ(got.workflow->plan.decisions[i].tier,
                      want.workflow->plan.decisions[i].tier);
            EXPECT_EQ(got.workflow->plan.decisions[i].overprovision,
                      want.workflow->plan.decisions[i].overprovision);
        }
    }
}

// The golden contract: for every worker count, service responses carry
// exactly the bits a direct solve produces — placements, utilities,
// runtimes and costs compare with == (no tolerance).
TEST(PlannerService, BitIdenticalToDirectSolveAcrossWorkerCounts) {
    const ServiceOptions direct_opts = fast_options(1);
    const auto truth_snapshot = fresh_snapshot();
    std::vector<PlanResponse> truth;
    for (const PlanRequest& request : golden_requests()) {
        truth.push_back(PlannerService::solve_direct(*truth_snapshot, request, direct_opts));
        ASSERT_TRUE(truth.back().ok());
    }

    for (const std::size_t workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        PlannerService service(fresh_snapshot(), fast_options(workers));
        std::vector<std::future<PlanResponse>> futures;
        for (const PlanRequest& request : golden_requests()) {
            futures.push_back(service.submit(request));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const PlanResponse got = futures[i].get();
            ASSERT_TRUE(got.ok()) << got.error;
            expect_bit_identical(got, truth[i]);
        }
    }
}

// A warm cache must not change bits either: replay the same mix twice on
// one service; the second pass (high hit rate) matches the first.
TEST(PlannerService, WarmCacheReplayIsBitIdentical) {
    PlannerService service(fresh_snapshot(), fast_options(2));
    auto run_once = [&] {
        std::vector<std::future<PlanResponse>> futures;
        for (const PlanRequest& request : golden_requests()) {
            futures.push_back(service.submit(request));
        }
        std::vector<PlanResponse> out;
        for (auto& f : futures) out.push_back(f.get());
        return out;
    };
    const auto cold = run_once();
    const auto warm = run_once();
    const auto stats = service.stats();
    EXPECT_GT(stats.cache.hits, 0u);
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_TRUE(warm[i].ok()) << warm[i].error;
        expect_bit_identical(warm[i], cold[i]);
    }
}

TEST(PlannerService, TinyBudgetFlagsExhaustionButStillPlans) {
    ServiceOptions opts = fast_options(2);
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 1.0;

    PlannerService service(fresh_snapshot(), opts);
    std::vector<std::future<PlanResponse>> futures;
    for (const PlanRequest& request : golden_requests()) {
        futures.push_back(service.submit(request));
    }
    for (auto& future : futures) {
        const PlanResponse resp = future.get();
        ASSERT_TRUE(resp.ok()) << resp.error;
        EXPECT_TRUE(resp.budget_exhausted());
        if (resp.batch) {
            EXPECT_TRUE(resp.batch->evaluation.feasible);
        }
    }
}

TEST(PlannerService, BackpressureRejectsWhenQueueIsFull) {
    ServiceOptions opts = fast_options(1);
    opts.queue_capacity = 1;
    opts.max_batch = 1;
    opts.coalesce_identical = false;
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 50.0;  // each solve occupies the worker ~50ms

    PlannerService service(fresh_snapshot(), opts);
    PlanRequest request;
    request.workload = workload_a();
    request.seed = 5;

    std::vector<std::future<PlanResponse>> futures;
    for (std::uint64_t i = 0; i < 16; ++i) {
        request.id = i + 1;
        futures.push_back(service.submit(request));
    }
    std::size_t rejected = 0;
    for (auto& future : futures) {
        const PlanResponse resp = future.get();
        if (resp.status == ResponseStatus::kRejected) {
            ++rejected;
            EXPECT_FALSE(resp.error.empty());
        } else {
            ASSERT_TRUE(resp.ok()) << resp.error;
        }
    }
    // 16 instant submits against a 1-deep queue and ~50ms solves: most must
    // bounce, and the ones that got in must all have completed.
    EXPECT_GT(rejected, 0u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

TEST(PlannerService, ErrorRequestFailsAloneWithoutPoisoningTheBatch) {
    PlannerService service(fresh_snapshot(), fast_options(2));
    PlanRequest bad;  // kBatch but no workload payload
    bad.id = 1;
    auto bad_future = service.submit(bad);

    PlanRequest good;
    good.id = 2;
    good.workload = workload_a();
    good.seed = 7;
    auto good_future = service.submit(good);

    const PlanResponse bad_resp = bad_future.get();
    EXPECT_EQ(bad_resp.status, ResponseStatus::kError);
    EXPECT_FALSE(bad_resp.error.empty());
    const PlanResponse good_resp = good_future.get();
    EXPECT_TRUE(good_resp.ok()) << good_resp.error;
}

TEST(PlannerService, CancelInflightDrainsQueuedWorkAsBudgetExhausted) {
    ServiceOptions opts = fast_options(1);
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 5'000.0;  // would take seconds uncancelled
    opts.coalesce_identical = false;

    PlannerService service(fresh_snapshot(), opts);
    std::vector<std::future<PlanResponse>> futures;
    PlanRequest request;
    request.workload = workload_a();
    request.seed = 5;
    for (std::uint64_t i = 0; i < 3; ++i) {
        request.id = i + 1;
        futures.push_back(service.submit(request));
    }
    service.cancel_inflight();
    for (auto& future : futures) {
        const PlanResponse resp = future.get();
        ASSERT_TRUE(resp.ok()) << resp.error;
        EXPECT_TRUE(resp.budget_exhausted());
    }
}

// The TSan hammer: concurrent submitters race snapshot swaps mid-flight.
// Every response must still be valid, and every request solves against a
// coherent snapshot (its epoch is one that actually existed).
TEST(PlannerService, SnapshotSwapHammerUnderConcurrentSubmitters) {
    constexpr int kSubmitters = 3;
    constexpr int kPerSubmitter = 12;
    constexpr int kSwaps = 8;

    ServiceOptions opts = fast_options(4);
    opts.solver.annealing.iter_max = 60;
    opts.queue_capacity = 1024;

    PlannerService service(fresh_snapshot(), opts);
    std::atomic<std::uint64_t> next_id{1};
    std::vector<std::vector<std::future<PlanResponse>>> futures(kSubmitters);

    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kPerSubmitter; ++i) {
                PlanRequest request;
                request.id = next_id.fetch_add(1, std::memory_order_relaxed);
                request.workload = (i % 2 == 0) ? workload_a() : workload_b();
                request.reuse_aware = (i % 2 == 1);
                request.seed = static_cast<std::uint64_t>(i);
                futures[static_cast<std::size_t>(s)].push_back(service.submit(request));
            }
        });
    }

    std::thread swapper([&] {
        for (int i = 0; i < kSwaps; ++i) {
            service.swap_snapshot(fresh_snapshot());
            std::this_thread::yield();
        }
    });

    for (auto& t : submitters) t.join();
    swapper.join();

    std::set<std::uint64_t> epochs;
    for (auto& lane : futures) {
        for (auto& future : lane) {
            const PlanResponse resp = future.get();
            ASSERT_TRUE(resp.ok()) << resp.error;
            epochs.insert(resp.snapshot_epoch);
        }
    }
    EXPECT_GE(epochs.size(), 1u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.snapshot_swaps, static_cast<std::uint64_t>(kSwaps));
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
    EXPECT_EQ(stats.errors, 0u);
}

// Coalesced duplicates must carry exactly the representative's bits, and a
// coalesced response says so.
TEST(PlannerService, CoalescingSharesBitsAcrossIdenticalRequests) {
    ServiceOptions opts = fast_options(1);
    opts.solver.annealing.iter_max = 2'000'000;
    opts.default_max_wall_ms = 40.0;  // first solve long enough to queue behind
    opts.max_batch = 16;

    PlannerService service(fresh_snapshot(), opts);
    // Occupy the dispatcher so the identical requests below land in one batch.
    PlanRequest head;
    head.id = 1;
    head.workload = workload_b();
    head.seed = 2;
    auto head_future = service.submit(head);

    PlanRequest request;
    request.workload = workload_a();
    request.seed = 9;
    std::vector<std::future<PlanResponse>> futures;
    for (std::uint64_t i = 0; i < 4; ++i) {
        request.id = 10 + i;
        futures.push_back(service.submit(request));
    }
    ASSERT_TRUE(head_future.get().ok());

    std::vector<PlanResponse> responses;
    for (auto& future : futures) responses.push_back(future.get());
    for (const PlanResponse& resp : responses) {
        ASSERT_TRUE(resp.ok()) << resp.error;
        expect_bit_identical(resp, responses.front());
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(std::count_if(
                                   responses.begin(), responses.end(),
                                   [](const PlanResponse& r) { return r.coalesced; })));
}

}  // namespace
}  // namespace cast::serve
