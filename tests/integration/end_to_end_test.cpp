// End-to-end regression tests for the paper's §5 evaluation claims, run at
// reduced solver budgets so the suite stays fast. The bench binaries
// regenerate the full tables; these tests pin the *orderings* that define
// the paper's headline results.
#include <gtest/gtest.h>

#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "test_support.hpp"
#include "workload/facebook.hpp"

namespace cast::core {
namespace {

using cloud::StorageTier;

CastOptions test_cast_options() {
    CastOptions o;
    o.annealing.iter_max = 12000;
    o.annealing.chains = 5;
    o.annealing.seed = 2015;
    return o;
}

class Fig7Test : public ::testing::Test {
protected:
    static const workload::Workload& fb_workload() {
        static const workload::Workload kWorkload = workload::synthesize_facebook_workload(42);
        return kWorkload;
    }
};

TEST_F(Fig7Test, CastBeatsEveryNonTieredConfiguration) {
    // §5.1.2: "Cast improves the tenant utility by 33.7%-178% compared to
    // the configurations with no explicit tiering."
    const auto& models = testing::paper_models();
    PlanEvaluator evaluator(models, fb_workload());
    const auto cast = plan_cast(models, fb_workload(), test_cast_options());
    const Deployer deployer;
    const auto deployed = deployer.deploy(evaluator, cast.plan);
    for (StorageTier t : cloud::kAllTiers) {
        const auto uniform = evaluator.evaluate(
            TieringPlan::uniform(fb_workload().size(), t));
        if (!uniform.feasible) continue;
        const auto uniform_dep =
            deployer.deploy(evaluator, TieringPlan::uniform(fb_workload().size(), t));
        EXPECT_GT(deployed.utility, 1.2 * uniform_dep.utility)
            << "vs " << cloud::tier_name(t);
    }
}

TEST_F(Fig7Test, CastBeatsGreedy) {
    // §5.1.2: utility improvement over the greedy variants (paper: +113%
    // to +178%; we require a solid margin).
    const auto& models = testing::paper_models();
    PlanEvaluator evaluator(models, fb_workload());
    GreedySolver greedy(evaluator);
    const Deployer deployer;
    const auto cast = plan_cast(models, fb_workload(), test_cast_options());
    const double u_cast = deployer.deploy(evaluator, cast.plan).utility;
    for (bool over : {false, true}) {
        const auto plan = greedy.solve(GreedyOptions{.over_provision = over});
        const double u_greedy = deployer.deploy(evaluator, plan).utility;
        EXPECT_GT(u_cast, 1.2 * u_greedy) << "over_provision=" << over;
    }
}

TEST_F(Fig7Test, CastPlusPlusAtLeastMatchesCast) {
    // §5.1.3: CAST++ enhances CAST (+14.4% in the paper). In this cloud
    // model most of the reuse benefit is absorbed by capacity pooling (see
    // EXPERIMENTS.md), so we require CAST++ not to lose.
    const auto& models = testing::paper_models();
    const auto cast = plan_cast(models, fb_workload(), test_cast_options());
    const auto castpp = plan_cast_plus_plus(models, fb_workload(), test_cast_options());
    PlanEvaluator oblivious(models, fb_workload());
    PlanEvaluator aware(models, fb_workload(), EvalOptions{.reuse_aware = true});
    const Deployer deployer;
    const double u_cast = deployer.deploy(oblivious, cast.plan).utility;
    const double u_castpp = deployer.deploy(aware, castpp.plan).utility;
    EXPECT_GT(u_castpp, 0.93 * u_cast);
    EXPECT_TRUE(castpp.plan.respects_reuse_groups(fb_workload()));
}

TEST(Fig8Accuracy, ModelTracksDeploymentWithinTenPercent) {
    // §5.1.4: average prediction error 7.9% on the 16-job, ~2 TB workload.
    const auto& models = testing::paper_models();
    const auto workload = workload::synthesize_model_accuracy_workload(7);
    double total_err = 0.0;
    int n = 0;
    for (double cap : {100.0, 300.0, 500.0}) {
        double predicted = 0.0;
        for (const auto& job : workload.jobs()) {
            predicted +=
                models.job_runtime(job, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        }
        sim::TierCapacities tc;
        tc.set(StorageTier::kPersistentSsd, GigaBytes{cap});
        sim::ClusterSim simulator(models.cluster(), models.catalog(), tc,
                                  sim::SimOptions{.seed = 8, .jitter_sigma = 0.06});
        double observed = 0.0;
        for (const auto& job : workload.jobs()) {
            observed += simulator
                            .run_job(sim::JobPlacement::on_tier(
                                job, StorageTier::kPersistentSsd))
                            .makespan.value();
        }
        total_err += std::fabs(predicted - observed) / observed;
        ++n;
    }
    EXPECT_LT(total_err / n, 0.10);
}

TEST(Fig9Deadlines, CastPlusPlusMeetsAllDeadlinesCheaply) {
    // §5.2.2: CAST++ meets every deadline at the lowest cost; the slow
    // tiers (persHDD, objStore) miss most or all of them.
    const auto& models = testing::paper_models();
    const auto workflows = workload::synthesize_deadline_workflows(11);
    const Deployer deployer;
    AnnealingOptions opts;
    opts.iter_max = 12000;
    opts.chains = 6;

    int castpp_misses = 0;
    int objstore_misses = 0;
    double castpp_cost = 0.0;
    for (const auto& wf : workflows) {
        WorkflowEvaluator evaluator(models, wf);
        WorkflowSolver solver(evaluator, opts);
        const auto solved = solver.solve();
        const auto dep = deployer.deploy_workflow(evaluator, solved.plan);
        castpp_misses += dep.met_deadline ? 0 : 1;
        castpp_cost += dep.total_cost().value();

        const auto obj = deployer.deploy_workflow(
            evaluator, WorkflowPlan::uniform(wf.size(), StorageTier::kObjectStore));
        objstore_misses += obj.met_deadline ? 0 : 1;
    }
    EXPECT_EQ(castpp_misses, 0);
    EXPECT_EQ(objstore_misses, static_cast<int>(workflows.size()));
    EXPECT_GT(castpp_cost, 0.0);
}

}  // namespace
}  // namespace cast::core
