// Integration tests asserting the paper's §3.1 characterization claims
// (Figures 1-3, 5) hold in this reproduction. These are the calibration
// gates: if an application profile or the cloud model drifts, these fail.
#include <gtest/gtest.h>

#include <array>

#include "core/castpp.hpp"
#include "core/characterization.hpp"
#include "workload/job.hpp"

namespace cast::core {
namespace {

using cloud::StorageCatalog;
using cloud::StorageTier;
using workload::AppKind;

workload::JobSpec fig1_job(AppKind app, double gb) {
    const int maps = std::max(1, static_cast<int>(gb / 0.128));
    return workload::JobSpec{.id = 100 + static_cast<int>(workload::app_index(app)),
                             .name = std::string("fig1-") + std::string(workload::app_name(app)),
                             .app = app,
                             .input = GigaBytes{gb},
                             .map_tasks = maps,
                             .reduce_tasks = std::max(1, maps / 4),
                             .reuse_group = std::nullopt};
}

// Paper §3.1 datasets (single n1-standard-16 slave).
const double kSortGb = 100.0;
const double kJoinGb = 60.0;
const double kGrepGb = 300.0;
const double kKMeansGb = 480.0;

class Fig1Test : public ::testing::Test {
protected:
    static std::array<TierRunResult, cloud::kTierCount> run_all(AppKind app, double gb) {
        const auto cluster = cloud::ClusterSpec::paper_single_node();
        const auto catalog = StorageCatalog::google_cloud();
        std::array<TierRunResult, cloud::kTierCount> out;
        for (StorageTier t : cloud::kAllTiers) {
            out[cloud::tier_index(t)] =
                run_job_on_tier(cluster, catalog, fig1_job(app, gb), t);
        }
        return out;
    }

    static double utility(const std::array<TierRunResult, cloud::kTierCount>& r,
                          StorageTier t) {
        return r[cloud::tier_index(t)].utility;
    }
    static double runtime(const std::array<TierRunResult, cloud::kTierCount>& r,
                          StorageTier t) {
        return r[cloud::tier_index(t)].sim.makespan.value();
    }
};

TEST_F(Fig1Test, SortBestOnEphemeralSsd) {
    // Fig. 1a: "ephSSD serves as the best tier for both execution time and
    // utility for Sort even after accounting for the data transfer cost".
    const auto r = run_all(AppKind::kSort, kSortGb);
    for (StorageTier t :
         {StorageTier::kPersistentSsd, StorageTier::kPersistentHdd, StorageTier::kObjectStore}) {
        EXPECT_LT(runtime(r, StorageTier::kEphemeralSsd), runtime(r, t))
            << cloud::tier_name(t);
        EXPECT_GT(utility(r, StorageTier::kEphemeralSsd), utility(r, t))
            << cloud::tier_name(t);
    }
}

TEST_F(Fig1Test, JoinBestOnPersistentSsdWorstOnObjectStore) {
    // Fig. 1b: "Join works best with persSSD, while it achieves the worst
    // utility on objStore" (GCS-connector small-file overheads).
    const auto r = run_all(AppKind::kJoin, kJoinGb);
    for (StorageTier t :
         {StorageTier::kEphemeralSsd, StorageTier::kPersistentHdd, StorageTier::kObjectStore}) {
        EXPECT_GT(utility(r, StorageTier::kPersistentSsd), utility(r, t))
            << cloud::tier_name(t);
        if (t != StorageTier::kObjectStore) {
            EXPECT_LT(utility(r, StorageTier::kObjectStore), utility(r, t))
                << cloud::tier_name(t);
        }
    }
}

TEST_F(Fig1Test, GrepObjectStoreBeatsPersistentSsdOnUtility) {
    // Fig. 1c: persSSD and objStore perform similarly, "but the lower cost
    // of objStore results in about 34.3% higher utility than persSSD".
    const auto r = run_all(AppKind::kGrep, kGrepGb);
    EXPECT_NEAR(runtime(r, StorageTier::kObjectStore) / runtime(r, StorageTier::kPersistentSsd),
                1.0, 0.25);
    const double gain = utility(r, StorageTier::kObjectStore) /
                        utility(r, StorageTier::kPersistentSsd);
    EXPECT_GT(gain, 1.1);
    EXPECT_LT(gain, 1.8);  // paper: 1.343
}

TEST_F(Fig1Test, KMeansBestOnPersistentHdd) {
    // Fig. 1d: persSSD and persHDD perform alike; persHDD's lower cost
    // yields the best utility.
    const auto r = run_all(AppKind::kKMeans, kKMeansGb);
    EXPECT_NEAR(runtime(r, StorageTier::kPersistentHdd) /
                    runtime(r, StorageTier::kPersistentSsd),
                1.0, 0.1);
    for (StorageTier t :
         {StorageTier::kEphemeralSsd, StorageTier::kPersistentSsd, StorageTier::kObjectStore}) {
        EXPECT_GT(utility(r, StorageTier::kPersistentHdd), utility(r, t))
            << cloud::tier_name(t);
    }
}

// --- Fig. 2: persSSD capacity scaling on the 10-VM cluster.

TEST(Fig2, CapacityScalingHalvesThenFlattens) {
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = StorageCatalog::google_cloud();
    const auto sort = fig1_job(AppKind::kSort, 100.0);
    auto runtime_at = [&](double per_vm_gb) {
        CharacterizationOptions opts;
        opts.block_volume_per_vm = GigaBytes{per_vm_gb};
        return run_job_on_tier(cluster, catalog, sort, StorageTier::kPersistentSsd, opts)
            .sim.makespan.value();
    };
    const double t100 = runtime_at(100.0);
    const double t200 = runtime_at(200.0);
    const double t500 = runtime_at(500.0);
    const double t1000 = runtime_at(1000.0);
    // Paper: 100 -> 200 GB cut Sort's runtime by 51.6%; beyond that,
    // marginal gains.
    EXPECT_NEAR(1.0 - t200 / t100, 0.5, 0.15);
    EXPECT_LT(1.0 - t1000 / t500, 0.35);
    EXPECT_LT(t1000, t500 + 1e-9);  // still monotone
}

// --- Fig. 3: data reuse flips tier choices.

TEST(Fig3, OneHourReuseMakesEphemeralBestForJoinAndGrep) {
    const auto cluster = cloud::ClusterSpec::paper_single_node();
    model::PerfModelSet models = [] {
        model::ProfilerOptions opts;
        opts.runs_per_point = 1;
        opts.block_capacity_points = {15.0, 30.0, 60.0, 100.0, 200.0, 350.0, 500.0, 1000.0};
        return model::Profiler(cloud::ClusterSpec::paper_single_node(),
                               StorageCatalog::google_cloud(), opts)
            .profile();
    }();
    const auto pattern = workload::ReusePattern::one_hour();
    for (auto [app, gb] : {std::pair{AppKind::kJoin, kJoinGb}, {AppKind::kGrep, kGrepGb}}) {
        const auto job = fig1_job(app, gb);
        const double eph =
            evaluate_reuse_scenario(models, job, StorageTier::kEphemeralSsd, pattern).utility;
        for (StorageTier t : {StorageTier::kPersistentSsd, StorageTier::kPersistentHdd,
                              StorageTier::kObjectStore}) {
            EXPECT_GT(eph, evaluate_reuse_scenario(models, job, t, pattern).utility)
                << workload::app_name(app) << " on " << cloud::tier_name(t);
        }
    }
    // One-week reuse: Sort flips to objStore, and persSSD (the best
    // no-reuse persistent choice) stops being competitive.
    const auto week = workload::ReusePattern::one_week();
    const auto sort = fig1_job(AppKind::kSort, kSortGb);
    const double obj =
        evaluate_reuse_scenario(models, sort, StorageTier::kObjectStore, week).utility;
    for (StorageTier t : {StorageTier::kEphemeralSsd, StorageTier::kPersistentSsd,
                          StorageTier::kPersistentHdd}) {
        EXPECT_GT(obj, evaluate_reuse_scenario(models, sort, t, week).utility)
            << cloud::tier_name(t);
    }
    // KMeans stays on persHDD across patterns (Fig. 3d).
    const auto kmeans = fig1_job(AppKind::kKMeans, kKMeansGb);
    for (const auto& pat : {workload::ReusePattern::none(), workload::ReusePattern::one_hour(),
                            workload::ReusePattern::one_week()}) {
        const double hdd =
            evaluate_reuse_scenario(models, kmeans, StorageTier::kPersistentHdd, pat).utility;
        for (StorageTier t : {StorageTier::kEphemeralSsd, StorageTier::kPersistentSsd,
                              StorageTier::kObjectStore}) {
            EXPECT_GT(hdd, evaluate_reuse_scenario(models, kmeans, t, pat).utility)
                << cloud::tier_name(t) << " accesses=" << pat.accesses;
        }
    }
}

// --- Fig. 5: fine-grained partitioning cannot avoid stragglers.

TEST(Fig5, AllOrNothingPlacementJustified) {
    // The paper's setup: 6 GB input, 24 map tasks "scheduled as a single
    // wave" — i.e. the node exposes 24 map slots, so every task runs
    // concurrently and per-stream throttling (volume bandwidth / slots)
    // pins each task to its slot share no matter how few tasks actually
    // touch the slow tier.
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker.map_slots = 24;
    cluster.worker.reduce_slots = 24;
    const auto catalog = StorageCatalog::google_cloud();
    workload::JobSpec grep = fig1_job(AppKind::kGrep, 6.0);
    grep.map_tasks = 24;
    grep.reduce_tasks = 6;

    auto run_split = [&](double eph_fraction, StorageTier slow) {
        std::vector<sim::InputSplit> splits;
        if (eph_fraction > 0.0) splits.push_back({StorageTier::kEphemeralSsd, eph_fraction});
        if (eph_fraction < 1.0) splits.push_back({slow, 1.0 - eph_fraction});
        return run_job_with_input_split(cluster, catalog, grep, splits).value();
    };

    const double eph100 = run_split(1.0, StorageTier::kPersistentHdd);
    const double hdd100 = run_split(0.0, StorageTier::kPersistentHdd);
    const double hdd50 = run_split(0.5, StorageTier::kPersistentHdd);
    const double hdd90 = run_split(0.9, StorageTier::kPersistentHdd);
    const double ssd100 = run_split(0.0, StorageTier::kPersistentSsd);
    const double ssd50 = run_split(0.5, StorageTier::kPersistentSsd);

    // Fig. 5a: hybrid no better than the slow tier alone (tasks on slow
    // media dominate).
    EXPECT_GT(ssd50, 0.85 * ssd100);
    EXPECT_GT(hdd50, 0.85 * hdd100);
    // Fig. 5b: even 90% on the fast tier barely helps.
    EXPECT_GT(hdd90, 0.8 * hdd100);
    // Sanity: the tiers genuinely differ (~4x in the paper's Fig. 5b).
    EXPECT_GT(hdd100 / eph100, 2.5);
    EXPECT_LT(hdd100 / eph100, 8.0);
}

}  // namespace
}  // namespace cast::core
