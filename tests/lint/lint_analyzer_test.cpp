// Analyzer surface tests: Report serialization and rollups, enforce/demote
// semantics, spec-file line attribution, the pre-solve hooks, and two
// property sweeps — every shipped example spec lints clean, and every bad
// fixture trips the rule its filename promises.
#include "lint/analyzer.hpp"

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/annealing.hpp"
#include "core/castpp.hpp"
#include "core/greedy.hpp"
#include "test_support.hpp"
#include "workload/spec_parser.hpp"

namespace cast::lint {
namespace {

namespace fs = std::filesystem;
using workload::AppKind;
using workload::JobSpec;

workload::ParsedSpec parse(const std::string& text) {
    std::istringstream is(text);
    return workload::parse_spec(is);
}

Finding mk_finding(std::string rule, Severity severity, std::string message = "") {
    Finding f;
    f.rule = std::move(rule);
    f.severity = severity;
    f.message = std::move(message);
    return f;
}

TEST(Report, RollupsAndSeverityBuckets) {
    Report report;
    report.add(mk_finding("L002", Severity::kWarning, "w"));
    report.add(mk_finding("L001", Severity::kError, "e"));
    report.add(mk_finding("L002", Severity::kWarning, "w2"));
    EXPECT_EQ(report.max_severity(), Severity::kError);
    EXPECT_EQ(report.count(Severity::kError), 1u);
    EXPECT_EQ(report.count(Severity::kWarning), 2u);
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.at(Severity::kWarning).size(), 2u);

    Report clean;
    EXPECT_TRUE(clean.ok());
    EXPECT_TRUE(clean.clean());
    EXPECT_EQ(clean.max_severity(), Severity::kInfo);
}

TEST(Report, TextPutsErrorsFirstAndCountsTrailing) {
    Report report;
    report.add(mk_finding("L002", Severity::kWarning, "warn"));
    report.add(mk_finding("L001", Severity::kError, "err"));
    std::ostringstream os;
    report.write_text(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("error L001"), text.find("warning L002"));
    EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(Report, JsonCarriesRuleSeverityAndLine) {
    Report report;
    report.add(Finding{.rule = "L014",
                       .severity = Severity::kError,
                       .subject = "job 'x'",
                       .message = "msg with \"quotes\"",
                       .fix_hint = "hint",
                       .line = 7});
    std::ostringstream os;
    report.write_json(os, "a.spec");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"source\": \"a.spec\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"L014\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(Enforce, ThrowsNamingEveryErrorFinding) {
    Report report;
    report.add(mk_finding("L003", Severity::kError, "dup id"));
    report.add(mk_finding("L016", Severity::kWarning, "meh"));
    try {
        enforce(report);
        FAIL() << "enforce() must throw on error findings";
    } catch (const ValidationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("L003"), std::string::npos);
        EXPECT_NE(what.find("dup id"), std::string::npos);
        EXPECT_EQ(what.find("L016"), std::string::npos);  // warnings don't reject
    }

    Report warnings_only;
    warnings_only.add(mk_finding("L016", Severity::kWarning));
    EXPECT_NO_THROW(enforce(warnings_only));
}

TEST(Demote, DowngradesOnlyTheNamedRule) {
    Report report;
    report.add(mk_finding("L009", Severity::kError));
    report.add(mk_finding("L001", Severity::kError));
    demote(report, "L009", Severity::kWarning);
    EXPECT_EQ(report.findings[0].severity, Severity::kWarning);
    EXPECT_EQ(report.findings[1].severity, Severity::kError);
    // Demoting never upgrades.
    demote(report, "L009", Severity::kError);
    EXPECT_EQ(report.findings[0].severity, Severity::kWarning);
}

TEST(LintSpec, AttributesFindingsToSourceLines) {
    const auto spec = parse(
        "# comment\n"
        "job 1 Sort 120\n"
        "job 2 Grep 200000\n");
    const Report report = lint_spec(spec);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().rule, "L002");
    ASSERT_TRUE(report.findings.front().line.has_value());
    EXPECT_EQ(*report.findings.front().line, 3);
}

TEST(LintSpec, WorkflowSpecRunsDagRules) {
    const auto spec = parse(
        "workflow half-wired deadline-min=600\n"
        "job 1 Grep 100\n"
        "job 2 Sort 50\n"
        "job 3 Join 40\n"
        "edge 1 2\n");
    const Report report = lint_spec(spec);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().rule, "L007");
    ASSERT_TRUE(report.findings.front().line.has_value());
    EXPECT_EQ(*report.findings.front().line, 4);  // the isolated job's line
}

TEST(LintCatalog, BuiltInCatalogsAreClean) {
    EXPECT_TRUE(lint_catalog(cloud::StorageCatalog::google_cloud()).clean());
    EXPECT_TRUE(lint_catalog(cloud::StorageCatalog::aws_like()).clean());
}

// --- Pre-solve hooks ------------------------------------------------------

workload::Workload conflicted_workload() {
    JobSpec a;
    a.id = 1;
    a.name = "Grep-1";
    a.app = AppKind::kGrep;
    a.input = GigaBytes{50.0};
    a.map_tasks = 400;
    a.reduce_tasks = 100;
    a.reuse_group = 1;
    a.pinned_tier = cloud::StorageTier::kEphemeralSsd;
    JobSpec b = a;
    b.id = 2;
    b.name = "Grep-2";
    b.pinned_tier = cloud::StorageTier::kPersistentSsd;
    return workload::Workload({a, b});
}

TEST(PreSolveHooks, AnnealingRejectsConflictedReuseGroupWithRuleId) {
    const auto& models = testing::small_models();
    core::PlanEvaluator evaluator(models, conflicted_workload(),
                                  core::EvalOptions{.reuse_aware = true});
    core::AnnealingSolver solver(evaluator);
    const auto initial =
        core::TieringPlan::uniform(2, cloud::StorageTier::kPersistentSsd);
    try {
        (void)solver.solve(initial);
        FAIL() << "pre-solve lint must reject the conflicted reuse group";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("L005"), std::string::npos);
    }
}

TEST(PreSolveHooks, GreedyRejectsConflictedReuseGroupWithRuleId) {
    const auto& models = testing::small_models();
    core::PlanEvaluator evaluator(models, conflicted_workload(),
                                  core::EvalOptions{.reuse_aware = true});
    core::GreedySolver solver(evaluator);
    EXPECT_THROW((void)solver.solve(core::GreedyOptions{}), ValidationError);
}

// --- Property sweeps over the shipped spec files --------------------------

std::vector<fs::path> spec_files(const fs::path& dir) {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".spec") out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(SpecProperties, EveryExampleSpecLintsClean) {
    const auto catalog = cloud::StorageCatalog::google_cloud();
    LintContext ctx;
    ctx.catalog = &catalog;
    ctx.reuse_aware = true;  // the stricter mode must also be clean
    const auto files = spec_files(CAST_EXAMPLE_SPEC_DIR);
    ASSERT_GE(files.size(), 5u);
    for (const auto& path : files) {
        const auto spec = workload::parse_spec_file(path.string());
        const Report report = lint_spec(spec, ctx);
        std::ostringstream os;
        report.write_text(os);
        EXPECT_TRUE(report.clean()) << path << ":\n" << os.str();
    }
}

TEST(SpecProperties, EveryFixtureTripsTheRuleItsNamePromises) {
    const auto catalog = cloud::StorageCatalog::google_cloud();
    LintContext ctx;
    ctx.catalog = &catalog;
    ctx.reuse_aware = true;
    const auto files = spec_files(CAST_LINT_FIXTURE_DIR);
    ASSERT_GE(files.size(), 5u);
    for (const auto& path : files) {
        const std::string expected_rule = path.filename().string().substr(0, 4);
        if (expected_rule == "L000") {
            // Too broken to parse (ValidationError or InvariantError,
            // depending on what breaks): the CLI maps this to rule L000.
            EXPECT_THROW((void)workload::parse_spec_file(path.string()), std::exception)
                << path;
            continue;
        }
        const auto spec = workload::parse_spec_file(path.string());
        const Report report = lint_spec(spec, ctx);
        std::set<std::string> rules;
        for (const auto& f : report.findings) rules.insert(f.rule);
        EXPECT_TRUE(rules.count(expected_rule) == 1) << path << " expected " << expected_rule;
    }
}

}  // namespace
}  // namespace cast::lint
