// Per-rule coverage for the cast::lint standard rule set: for every rule,
// at least one input that must stay clean and one that must trip exactly
// that rule ID. Inputs are raw LintInput views — the whole point of the
// non-owning design is that lint can describe inputs too broken for
// Workload/Workflow to construct.
#include "lint/rules.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/analyzer.hpp"
#include "test_support.hpp"

namespace cast::lint {
namespace {

using cloud::StorageTier;
using core::PlacementDecision;
using workload::AppKind;
using workload::JobSpec;
using workload::WorkflowEdge;

JobSpec mk_job(int id, AppKind app, double input_gb) {
    JobSpec j;
    j.id = id;
    j.app = app;
    j.name = std::string(workload::app_name(app)) + "-" + std::to_string(id);
    j.input = GigaBytes{input_gb};
    j.map_tasks = std::max(1, static_cast<int>(input_gb * 8.0));  // ~128 MB splits
    j.reduce_tasks = std::max(1, j.map_tasks / 4);
    return j;
}

Report run(const LintInput& in) { return Analyzer::standard().run(in); }

std::size_t count_rule(const Report& report, std::string_view id) {
    return static_cast<std::size_t>(
        std::count_if(report.findings.begin(), report.findings.end(),
                      [id](const Finding& f) { return f.rule == id; }));
}

/// A minimal synthetic service for defective-catalog tests. Bandwidth grows
/// with capacity unless `degrading`, in which case it shrinks (violating
/// the monotonicity the over-provisioning search relies on).
class FakeService final : public cloud::StorageService {
public:
    FakeService(StorageTier tier, bool persistent, bool degrading)
        : StorageService(tier, "fake", persistent, Dollars{0.1}), degrading_(degrading) {}

    [[nodiscard]] GigaBytes provision(GigaBytes requested) const override {
        return requested;
    }
    [[nodiscard]] std::optional<GigaBytes> max_capacity_per_vm() const override {
        return GigaBytes{1000.0};
    }
    [[nodiscard]] cloud::TierPerformance performance(GigaBytes provisioned) const override {
        const double bw = degrading_ ? 500.0 - 0.3 * provisioned.value()
                                     : 100.0 + 0.3 * provisioned.value();
        return cloud::TierPerformance{MBytesPerSec{bw}, MBytesPerSec{bw}, Iops{1000.0}};
    }

private:
    bool degrading_;
};

cloud::StorageCatalog fake_catalog(bool degrading_ssd, bool persistent_objstore,
                                   bool persistent_persssd) {
    std::array<std::shared_ptr<const cloud::StorageService>, cloud::kTierCount> services;
    for (StorageTier tier : cloud::kAllTiers) {
        bool persistent = tier != StorageTier::kEphemeralSsd;
        if (tier == StorageTier::kObjectStore) persistent = persistent_objstore;
        if (tier == StorageTier::kPersistentSsd) persistent = persistent_persssd;
        const bool degrading = degrading_ssd && tier == StorageTier::kPersistentSsd;
        services[cloud::tier_index(tier)] =
            std::make_shared<FakeService>(tier, persistent, degrading);
    }
    return cloud::StorageCatalog::custom("fake", std::move(services));
}

TEST(RuleSet, IdsAreUniqueSortedAndDocumented) {
    const auto rules = standard_rules();
    ASSERT_EQ(rules.size(), 18u);
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_FALSE(rules[i]->summary().empty());
        if (i > 0) {
            EXPECT_LT(rules[i - 1]->id(), rules[i]->id());
        }
    }
    EXPECT_EQ(rules.front()->id(), "L001");
    EXPECT_EQ(rules.back()->id(), "L018");
}

// --- L001 -----------------------------------------------------------------

TEST(L001JobSanity, CleanJobsPass) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0)};
    LintInput in;
    in.jobs = &jobs;
    EXPECT_EQ(count_rule(run(in), "L001"), 0u);
}

TEST(L001JobSanity, FlagsNonFiniteNegativeAndZeroCounts) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                 mk_job(2, AppKind::kGrep, 50.0),
                                 mk_job(3, AppKind::kJoin, 30.0)};
    jobs[0].input = GigaBytes{std::numeric_limits<double>::quiet_NaN()};
    jobs[1].input = GigaBytes{-10.0};
    jobs[2].map_tasks = 0;
    LintInput in;
    in.jobs = &jobs;
    const Report report = run(in);
    EXPECT_EQ(count_rule(report, "L001"), 3u);
    EXPECT_EQ(report.max_severity(), Severity::kError);
}

// --- L002 -----------------------------------------------------------------

TEST(L002Plausibility, PaperScaleInputsPass) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                       mk_job(2, AppKind::kGrep, 2000.0)};
    LintInput in;
    in.jobs = &jobs;
    EXPECT_EQ(count_rule(run(in), "L002"), 0u);
}

TEST(L002Plausibility, FlagsHugeInputAndAbsurdSplit) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 200000.0),
                                 mk_job(2, AppKind::kGrep, 100.0)};
    jobs[1].map_tasks = 2;  // 50 GB per map task
    LintInput in;
    in.jobs = &jobs;
    const Report report = run(in);
    EXPECT_EQ(count_rule(report, "L002"), 2u);
    for (const Finding* f : report.at(Severity::kWarning)) {
        EXPECT_EQ(f->rule, "L002");
    }
}

TEST(L002Plausibility, StaysSilentOnL001Territory) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0)};
    jobs[0].input = GigaBytes{std::numeric_limits<double>::infinity()};
    LintInput in;
    in.jobs = &jobs;
    EXPECT_EQ(count_rule(run(in), "L002"), 0u);  // L001 owns it
}

// --- L003 -----------------------------------------------------------------

TEST(L003UniqueIds, FlagsDuplicates) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                       mk_job(1, AppKind::kGrep, 50.0)};
    LintInput in;
    in.jobs = &jobs;
    EXPECT_EQ(count_rule(run(in), "L003"), 1u);
}

// --- L004 -----------------------------------------------------------------

TEST(L004ReuseInputs, EqualSizesPassDifferingSizesFlagged) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 250.0),
                                 mk_job(2, AppKind::kSort, 250.0)};
    jobs[0].reuse_group = 1;
    jobs[1].reuse_group = 1;
    LintInput in;
    in.jobs = &jobs;
    EXPECT_EQ(count_rule(run(in), "L004"), 0u);

    jobs[1].input = GigaBytes{260.0};
    EXPECT_EQ(count_rule(run(in), "L004"), 1u);
}

// --- L005 -----------------------------------------------------------------

TEST(L005ReusePins, ConflictIsErrorWhenReuseAwareWarningOtherwise) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 250.0),
                                 mk_job(2, AppKind::kGrep, 250.0)};
    jobs[0].reuse_group = 1;
    jobs[0].pinned_tier = StorageTier::kEphemeralSsd;
    jobs[1].reuse_group = 1;
    jobs[1].pinned_tier = StorageTier::kPersistentSsd;
    LintInput in;
    in.jobs = &jobs;

    in.reuse_aware = true;
    Report report = run(in);
    ASSERT_EQ(count_rule(report, "L005"), 1u);
    EXPECT_EQ(report.max_severity(), Severity::kError);

    in.reuse_aware = false;
    report = run(in);
    ASSERT_EQ(count_rule(report, "L005"), 1u);
    EXPECT_EQ(report.max_severity(), Severity::kWarning);
}

TEST(L005ReusePins, AgreeingPinsPass) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 250.0),
                                 mk_job(2, AppKind::kGrep, 250.0)};
    for (auto& j : jobs) {
        j.reuse_group = 1;
        j.pinned_tier = StorageTier::kPersistentHdd;
    }
    LintInput in;
    in.jobs = &jobs;
    in.reuse_aware = true;
    EXPECT_EQ(count_rule(run(in), "L005"), 0u);
}

// --- L006 -----------------------------------------------------------------

TEST(L006DagShape, AcyclicDagPasses) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0),
                                       mk_job(3, AppKind::kJoin, 25.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}, {1, 3}, {2, 3}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    EXPECT_EQ(count_rule(run(in), "L006"), 0u);
}

TEST(L006DagShape, FlagsCycleNamingItsMembers) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0),
                                       mk_job(3, AppKind::kJoin, 25.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}, {2, 3}, {3, 1}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L006"), 1u);
    EXPECT_NE(report.findings.front().message.find("cycle"), std::string::npos);
    EXPECT_NE(report.findings.front().message.find("Grep-1"), std::string::npos);
}

TEST(L006DagShape, FlagsSelfEdge) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0)};
    const std::vector<WorkflowEdge> edges = {{1, 1}, {1, 2}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L006"), 1u);
    EXPECT_NE(report.findings.front().message.find("self-edge"), std::string::npos);
}

// --- L007 -----------------------------------------------------------------

TEST(L007IsolatedStage, FlagsUnwiredJobOnly) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0),
                                       mk_job(3, AppKind::kJoin, 25.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L007"), 1u);
    EXPECT_EQ(report.findings.front().subject, "job 'Join-3'");
    EXPECT_EQ(report.max_severity(), Severity::kWarning);
}

TEST(L007IsolatedStage, EdgelessWorkflowIsNotFlagged) {
    // No edges at all: nothing is "isolated" relative to anything.
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0)};
    const std::vector<WorkflowEdge> edges;
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    EXPECT_EQ(count_rule(run(in), "L007"), 0u);
}

// --- L008 -----------------------------------------------------------------

TEST(L008EdgeRefs, FlagsUndeclaredEndpoints) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 100.0),
                                       mk_job(2, AppKind::kSort, 50.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}, {1, 9}, {8, 2}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    EXPECT_EQ(count_rule(run(in), "L008"), 2u);
}

// --- L009 -----------------------------------------------------------------

TEST(L009Deadline, GenerousDeadlinePasses) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 50.0),
                                       mk_job(2, AppKind::kSort, 25.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    in.deadline = Seconds::from_hours(100.0);
    in.models = &testing::small_models();
    EXPECT_EQ(count_rule(run(in), "L009"), 0u);
}

TEST(L009Deadline, ProvablyUnattainableDeadlineIsAnError) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 50.0),
                                       mk_job(2, AppKind::kSort, 25.0)};
    const std::vector<WorkflowEdge> edges = {{1, 2}};
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    in.deadline = Seconds{1.0};
    in.models = &testing::small_models();
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L009"), 1u);
    EXPECT_EQ(report.findings.front().severity, Severity::kError);
    EXPECT_NE(report.findings.front().message.find("lower bound"), std::string::npos);
}

TEST(L009Deadline, SkipsWhenModelsAbsent) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 50.0)};
    const std::vector<WorkflowEdge> edges;
    LintInput in;
    in.jobs = &jobs;
    in.edges = &edges;
    in.deadline = Seconds{1.0};  // unattainable, but unprovable without models
    EXPECT_EQ(count_rule(run(in), "L009"), 0u);
}

// --- L010 -----------------------------------------------------------------

TEST(L010CatalogMonotone, BuiltInCatalogsPass) {
    for (const char* name : {"google-cloud", "aws-like"}) {
        const auto catalog = cloud::StorageCatalog::by_name(name);
        LintInput in;
        in.catalog = &catalog;
        EXPECT_EQ(count_rule(run(in), "L010"), 0u) << name;
    }
}

TEST(L010CatalogMonotone, FlagsDegradingCurveOncePerTier) {
    const auto catalog = fake_catalog(/*degrading_ssd=*/true, true, true);
    LintInput in;
    in.catalog = &catalog;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L010"), 1u);
    EXPECT_EQ(report.findings.front().subject, "persSSD");
}

// --- L011 -----------------------------------------------------------------

TEST(L011CatalogConventions, FlagsNonPersistentBackingStore) {
    const auto catalog = fake_catalog(false, /*persistent_objstore=*/false, true);
    LintInput in;
    in.catalog = &catalog;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L011"), 1u);
    EXPECT_EQ(report.findings.front().subject, "backing store");
}

TEST(L011CatalogConventions, FlagsNonPersistentIntermediateTier) {
    const auto catalog = fake_catalog(false, true, /*persistent_persssd=*/false);
    LintInput in;
    in.catalog = &catalog;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L011"), 1u);
    EXPECT_EQ(report.findings.front().subject, "objStore intermediate tier");
}

// --- L012 / L013 ----------------------------------------------------------

TEST(L012PlanShape, FlagsSizeMismatch) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                       mk_job(2, AppKind::kGrep, 50.0)};
    const std::vector<PlacementDecision> decisions = {
        {StorageTier::kPersistentSsd, 1.0}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    EXPECT_EQ(count_rule(run(in), "L012"), 1u);
}

TEST(L013Factors, FlagsSubOneAndNonFinite) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                       mk_job(2, AppKind::kGrep, 50.0)};
    const std::vector<PlacementDecision> decisions = {
        {StorageTier::kPersistentSsd, 0.5},
        {StorageTier::kPersistentSsd, std::numeric_limits<double>::quiet_NaN()}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    EXPECT_EQ(count_rule(run(in), "L013"), 2u);
}

// --- L014 / L015 ----------------------------------------------------------

TEST(L014TierPins, FlagsViolatedPin) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0)};
    jobs[0].pinned_tier = StorageTier::kPersistentSsd;
    const std::vector<PlacementDecision> decisions = {{StorageTier::kEphemeralSsd, 1.0}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L014"), 1u);
    EXPECT_NE(report.findings.front().message.find("pinned"), std::string::npos);
}

TEST(L015ReuseGroupSplit, FlagsSplitGroupOnlyWhenReuseAware) {
    std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 250.0),
                                 mk_job(2, AppKind::kGrep, 250.0)};
    jobs[0].reuse_group = 1;
    jobs[1].reuse_group = 1;
    const std::vector<PlacementDecision> decisions = {{StorageTier::kEphemeralSsd, 1.0},
                                                      {StorageTier::kPersistentSsd, 1.0}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;

    in.reuse_aware = true;
    EXPECT_EQ(count_rule(run(in), "L015"), 1u);

    in.reuse_aware = false;  // Eq. 7 not enforced: splitting is legal
    EXPECT_EQ(count_rule(run(in), "L015"), 0u);
}

// --- L016 -----------------------------------------------------------------

TEST(L016UselessOverProvision, FlagsObjStoreAndExtremeFactors) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 120.0),
                                       mk_job(2, AppKind::kGrep, 50.0),
                                       mk_job(3, AppKind::kJoin, 25.0)};
    const std::vector<PlacementDecision> decisions = {{StorageTier::kObjectStore, 2.0},
                                                      {StorageTier::kPersistentSsd, 32.0},
                                                      {StorageTier::kPersistentSsd, 4.0}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    const Report report = run(in);
    EXPECT_EQ(count_rule(report, "L016"), 2u);
    EXPECT_EQ(report.max_severity(), Severity::kWarning);
}

// --- L017 -----------------------------------------------------------------

TEST(L017CapacityLimits, ModestPlanFits) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 50.0)};
    const std::vector<PlacementDecision> decisions = {{StorageTier::kPersistentSsd, 2.0}};
    const auto& models = testing::small_models();
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    in.models = &models;
    in.catalog = &models.catalog();
    EXPECT_EQ(count_rule(run(in), "L017"), 0u);
}

TEST(L017CapacityLimits, FlagsPerVmOverflow) {
    // 5 workers x 4 x 375 GB ephSSD = 7500 GB aggregate; Sort needs input +
    // intermediate + output = 3x input, so 5000 GB of input cannot fit.
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 5000.0)};
    const std::vector<PlacementDecision> decisions = {{StorageTier::kEphemeralSsd, 1.0}};
    const auto& models = testing::small_models();
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    in.models = &models;
    in.catalog = &models.catalog();
    const Report report = run(in);
    ASSERT_EQ(count_rule(report, "L017"), 1u);
    EXPECT_EQ(report.findings.front().subject, "ephSSD");
}

// --- L018 -----------------------------------------------------------------

TEST(L018ModelCoverage, FullyProfiledSetPasses) {
    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kGrep, 50.0)};
    const std::vector<PlacementDecision> decisions = {{StorageTier::kPersistentHdd, 1.0}};
    LintInput in;
    in.jobs = &jobs;
    in.decisions = &decisions;
    in.models = &testing::small_models();
    EXPECT_EQ(count_rule(run(in), "L018"), 0u);
}

TEST(L018ModelCoverage, FlagsUnprofiledPlacementAndUnplannableApp) {
    const auto& full = testing::small_models();
    model::PerfModelSet sparse(testing::small_cluster(),
                               cloud::StorageCatalog::google_cloud());
    // Only (Sort, persSSD) is calibrated.
    sparse.set_tier_model(AppKind::kSort, StorageTier::kPersistentSsd,
                          full.tier_model(AppKind::kSort, StorageTier::kPersistentSsd));

    const std::vector<JobSpec> jobs = {mk_job(1, AppKind::kSort, 50.0),
                                       mk_job(2, AppKind::kGrep, 25.0)};
    LintInput in;
    in.jobs = &jobs;
    in.models = &sparse;

    // Without a plan: Sort is plannable somewhere, Grep nowhere.
    Report report = run(in);
    ASSERT_EQ(count_rule(report, "L018"), 1u);
    EXPECT_EQ(report.findings.front().subject, "job 'Grep-2'");

    // With a plan: the placement (Sort, ephSSD) is also uncalibrated.
    const std::vector<PlacementDecision> decisions = {{StorageTier::kEphemeralSsd, 1.0},
                                                      {StorageTier::kPersistentSsd, 1.0}};
    in.decisions = &decisions;
    report = run(in);
    EXPECT_EQ(count_rule(report, "L018"), 2u);
}

}  // namespace
}  // namespace cast::lint
