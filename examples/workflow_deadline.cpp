// Workflow deadlines: plan a DAG of jobs to meet an SLO at minimum cost.
//
// Uses the paper's running example (Fig. 4a): a search-engine log analysis
// where Grep feeds Sort, PageRank feeds Join, and Sort feeds Join. CAST++'s
// workflow mode (Eq. 8-10) minimizes the dollar cost subject to the
// completion deadline, accounting for cross-tier transfers along DAG edges.
//
// Run:  ./build/examples/workflow_deadline [deadline-seconds]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"

#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "model/profiler.hpp"

using namespace cast;

int main(int argc, char** argv) {
    const double deadline_s = argc > 1 ? std::atof(argv[1]) : 6000.0;
    const auto cluster = cloud::ClusterSpec::paper_single_node();
    const workload::Workflow wf = workload::make_search_log_workflow(Seconds{deadline_s});

    std::cout << "workflow '" << wf.name() << "', " << wf.size() << " jobs, deadline "
              << fmt(wf.deadline().minutes(), 1) << " min\n";
    for (std::size_t i : wf.topological_order()) {
        const auto& j = wf.jobs()[i];
        std::cout << "  " << j.name << " <-";
        for (std::size_t p : wf.predecessors(i)) std::cout << " " << wf.jobs()[p].name;
        if (wf.predecessors(i).empty()) std::cout << " (source data)";
        std::cout << "\n";
    }

    ThreadPool pool;
    const model::PerfModelSet models =
        model::Profiler(cluster, cloud::StorageCatalog::google_cloud()).profile(&pool);

    core::WorkflowEvaluator evaluator(models, wf);
    core::WorkflowSolver solver(evaluator);
    const core::WorkflowSolveResult solved = solver.solve(&pool);

    std::cout << "\nCAST++ plan (min cost s.t. deadline):\n";
    for (std::size_t i = 0; i < wf.size(); ++i) {
        std::cout << "  " << wf.jobs()[i].name << " -> "
                  << cloud::tier_name(solved.plan.decisions[i].tier) << " (capacity x"
                  << solved.plan.decisions[i].overprovision << ")\n";
    }
    std::cout << "modeled runtime " << fmt(solved.evaluation.total_runtime.minutes(), 1)
              << " min, cost $" << fmt(solved.evaluation.total_cost().value(), 2)
              << (solved.evaluation.meets_deadline ? "  [meets deadline]"
                                                   : "  [NO plan met the deadline]")
              << "\n";

    const auto dep = core::Deployer().deploy_workflow(evaluator, solved.plan);
    std::cout << "deployed: runtime " << fmt(dep.total_runtime.minutes(), 1) << " min, cost $"
              << fmt(dep.total_cost().value(), 2) << ", deadline "
              << (dep.met_deadline ? "MET" : "MISSED") << "\n";

    // Contrast with the naive all-object-store deployment.
    const auto naive = core::Deployer().deploy_workflow(
        evaluator, core::WorkflowPlan::uniform(wf.size(), cloud::StorageTier::kObjectStore));
    std::cout << "\n(all-objStore for comparison: " << fmt(naive.total_runtime.minutes(), 1)
              << " min, $" << fmt(naive.total_cost().value(), 2) << ", deadline "
              << (naive.met_deadline ? "met" : "missed") << ")\n";
    return 0;
}
