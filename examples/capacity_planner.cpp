// Capacity planner: a what-if tool for a single recurring job.
//
// Answers the tenant question of §3.1.2-§3.1.3 interactively: "for THIS
// job, which storage service should hold the data, how much capacity
// should I provision, and how does the answer change if I re-run the job
// over a retention window?" Prints a per-tier sweep of capacity vs
// runtime/cost plus the reuse-pattern recommendation.
//
// Run:  ./build/examples/capacity_planner [app] [input-GB] [accesses] [lifetime-hours]
//       e.g. ./build/examples/capacity_planner Sort 200 7 24
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/castpp.hpp"
#include "model/profiler.hpp"

using namespace cast;

int main(int argc, char** argv) {
    const std::string app_name_arg = argc > 1 ? argv[1] : "Sort";
    const double input_gb = argc > 2 ? std::atof(argv[2]) : 200.0;
    const int accesses = argc > 3 ? std::atoi(argv[3]) : 7;
    const double lifetime_h = argc > 4 ? std::atof(argv[4]) : 24.0;

    const auto app = workload::app_from_name(app_name_arg);
    if (!app) {
        std::cerr << "unknown application '" << app_name_arg
                  << "' (expected Sort/Join/Grep/KMeans/PageRank)\n";
        return 1;
    }
    const int maps = std::max(1, static_cast<int>(input_gb / 0.128));
    const workload::JobSpec job{.id = 1,
                                .name = app_name_arg,
                                .app = *app,
                                .input = GigaBytes{input_gb},
                                .map_tasks = maps,
                                .reduce_tasks = std::max(1, maps / 4),
                                .reuse_group = std::nullopt};

    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = 5;
    ThreadPool pool;
    const model::PerfModelSet models =
        model::Profiler(cluster, cloud::StorageCatalog::google_cloud()).profile(&pool);

    std::cout << "capacity sweep for one run of " << job.name << " (" << job.input
              << ") on 5 workers:\n";
    TextTable sweep({"tier", "per-VM capacity (GB)", "est. runtime (min)", "note"});
    for (cloud::StorageTier tier :
         {cloud::StorageTier::kPersistentSsd, cloud::StorageTier::kPersistentHdd}) {
        for (double cap : {100.0, 250.0, 500.0, 1000.0}) {
            const Seconds t = models.job_runtime(job, tier, GigaBytes{cap});
            sweep.add_row({std::string(cloud::tier_name(tier)), fmt(cap, 0),
                           fmt(t.minutes(), 1),
                           cap * 0.468 > 250.0 && tier == cloud::StorageTier::kPersistentSsd
                               ? "past bandwidth ceiling"
                               : ""});
        }
    }
    sweep.print(std::cout);

    const workload::ReusePattern pattern{accesses, Seconds::from_hours(lifetime_h)};
    std::cout << "\nreuse scenario: " << accesses << " accesses over " << lifetime_h
              << " h\n";
    TextTable reuse({"tier", "per-access runtime (min)", "total cost ($)", "utility"});
    cloud::StorageTier best = cloud::StorageTier::kEphemeralSsd;
    double best_u = -1.0;
    for (cloud::StorageTier tier : cloud::kAllTiers) {
        const auto r = core::evaluate_reuse_scenario(models, job, tier, pattern);
        if (r.utility > best_u) {
            best_u = r.utility;
            best = tier;
        }
        reuse.add_row({std::string(cloud::tier_name(tier)),
                       fmt(r.total_runtime.minutes() / accesses, 1),
                       fmt(r.total_cost().value(), 2), fmt(r.utility, 5)});
    }
    reuse.print(std::cout);
    std::cout << "\nrecommendation: keep this dataset on " << cloud::tier_name(best) << "\n";
    return 0;
}
