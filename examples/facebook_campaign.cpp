// Production-scale campaign: plan the paper's 100-job Facebook-derived
// workload on the 400-core cluster, with and without data-reuse awareness.
//
// Demonstrates the batch-planning workflow a tenant would run before a
// nightly analytics campaign: synthesize (or load) the job mix, profile
// once, solve, inspect the per-tier capacity shopping list, and deploy.
//
// Run:  ./build/examples/facebook_campaign [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "model/profiler.hpp"
#include "workload/facebook.hpp"

using namespace cast;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    const workload::Workload workload = workload::synthesize_facebook_workload(seed);
    std::cout << "workload: " << workload.size() << " jobs, "
              << fmt(workload.total_input().value() / 1000.0, 2) << " TB input, "
              << workload.reuse_groups().size() << " reuse groups\n";

    ThreadPool pool;
    const model::PerfModelSet models =
        model::Profiler(cluster, cloud::StorageCatalog::google_cloud()).profile(&pool);

    core::CastOptions opts;
    opts.annealing.iter_max = 25000;
    const core::CastResult cast = core::plan_cast(models, workload, opts, &pool);
    const core::CastResult castpp = core::plan_cast_plus_plus(models, workload, opts, &pool);

    // The provisioning shopping list a tenant would hand to their deploy
    // scripts: capacity per storage service.
    core::PlanEvaluator aware(models, workload, core::EvalOptions{.reuse_aware = true});
    const auto caps = aware.capacities(castpp.plan);
    std::cout << "\nCAST++ provisioning plan (" << castpp.plan.summarize() << "):\n";
    TextTable t({"service", "aggregate (GB)", "per VM (GB)", "$/hour"});
    for (cloud::StorageTier tier : cloud::kAllTiers) {
        const double agg = caps.aggregate_of(tier).value();
        if (agg <= 0.0) continue;
        const double hourly =
            agg *
            cloud::StorageCatalog::google_cloud().service(tier).price_per_gb_hour().value();
        t.add_row({std::string(cloud::tier_name(tier)), fmt(agg, 0),
                   fmt(caps.per_vm_of(tier).value(), 0), fmt(hourly, 2)});
    }
    t.print(std::cout);

    const core::Deployer deployer;
    core::PlanEvaluator oblivious(models, workload);
    const auto d_cast = deployer.deploy(oblivious, cast.plan);
    const auto d_castpp = deployer.deploy(aware, castpp.plan);
    std::cout << "\nCAST:   " << fmt(d_cast.total_runtime.minutes(), 1) << " min, $"
              << fmt(d_cast.total_cost().value(), 2) << ", utility " << d_cast.utility << "\n"
              << "CAST++: " << fmt(d_castpp.total_runtime.minutes(), 1) << " min, $"
              << fmt(d_castpp.total_cost().value(), 2) << ", utility " << d_castpp.utility
              << "  (" << fmt_pct(d_castpp.utility / d_cast.utility - 1.0, 1)
              << " vs CAST)\n";
    return 0;
}
