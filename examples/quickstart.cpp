// Quickstart: plan storage tiering for a small analytics workload.
//
// The full CAST pipeline in ~60 lines:
//   1. describe the cluster and the workload,
//   2. run offline profiling (builds the M̂ bandwidth matrix and the REG
//      capacity-scaling splines against the bundled cluster simulator),
//   3. solve for a tiering plan with CAST,
//   4. deploy the plan on the simulated cloud and compare modeled vs
//      measured utility.
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"

#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "model/profiler.hpp"

using namespace cast;

int main() {
    // --- 1. Cluster: 5 x n1-standard-16 workers + a master.
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = 5;

    // --- and a four-job workload with mixed I/O personalities.
    auto job = [](int id, workload::AppKind app, double gb) {
        const int maps = std::max(1, static_cast<int>(gb / 0.128));
        return workload::JobSpec{.id = id,
                                 .name = std::string(workload::app_name(app)),
                                 .app = app,
                                 .input = GigaBytes{gb},
                                 .map_tasks = maps,
                                 .reduce_tasks = std::max(1, maps / 4),
                                 .reuse_group = std::nullopt};
    };
    const workload::Workload workload({job(1, workload::AppKind::kSort, 320.0),
                                       job(2, workload::AppKind::kJoin, 240.0),
                                       job(3, workload::AppKind::kGrep, 480.0),
                                       job(4, workload::AppKind::kKMeans, 200.0)});

    // --- 2. Offline profiling (§4.1).
    ThreadPool pool;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud());
    const model::PerfModelSet models = profiler.profile(&pool);
    std::cout << "profiled " << workload::kAllApps.size() << " apps x "
              << cloud::kAllTiers.size() << " storage services\n";

    // --- 3. Plan with CAST (greedy seed + simulated annealing, §4.2).
    const core::CastResult result = core::plan_cast(models, workload, {}, &pool);
    std::cout << "\nCAST plan: " << result.plan.summarize() << "\n";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const auto& d = result.plan.decision(i);
        std::cout << "  " << workload.job(i).name << " (" << workload.job(i).input
                  << ") -> " << cloud::tier_name(d.tier) << ", capacity x" << d.overprovision
                  << "\n";
    }
    std::cout << "modeled: runtime " << fmt(result.evaluation.total_runtime.minutes(), 1)
              << " min, cost $" << fmt(result.evaluation.total_cost().value(), 2)
              << ", tenant utility " << result.evaluation.utility << "\n";

    // --- 4. Deploy on the simulated cloud and measure.
    core::PlanEvaluator evaluator(models, workload);
    const core::WorkloadDeployment dep = core::Deployer().deploy(evaluator, result.plan);
    std::cout << "measured: runtime " << fmt(dep.total_runtime.minutes(), 1) << " min, cost $"
              << fmt(dep.total_cost().value(), 2) << ", tenant utility " << dep.utility
              << "\n";

    // How much did tiering buy? Compare against the best single-service
    // deployment.
    double best_uniform = 0.0;
    std::string best_name;
    for (cloud::StorageTier t : cloud::kAllTiers) {
        const auto e = evaluator.evaluate(core::TieringPlan::uniform(workload.size(), t));
        if (e.feasible && e.utility > best_uniform) {
            best_uniform = e.utility;
            best_name = std::string(cloud::tier_name(t));
        }
    }
    std::cout << "\nbest non-tiered alternative (" << best_name
              << " 100%) modeled utility: " << best_uniform << "  ->  CAST gains "
              << fmt_pct(result.evaluation.utility / best_uniform - 1.0, 1) << "\n";
    return 0;
}
